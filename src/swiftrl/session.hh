/**
 * @file
 * The round-granular training session both trainers drive.
 *
 * A TrainerSession owns everything one training run needs on the PIM
 * side — the command stream, the Q-table wire I/O, the per-(core,
 * tasklet) LCG streams, the host-side aggregate, the kernel
 * parameters, and the fault-recovery plumbing — and exposes it as an
 * explicit state machine:
 *
 *     Init --begin/restore--> Ready --step()...--> (rounds done)
 *       Ready --pause()--> Paused --resume()--> Ready
 *       Ready --finishRetrieval()--> Done
 *
 * One step() is one tau-round: launch (with bounded retry and
 * dropout redistribution), gather, aggregate, host-reduce, broadcast
 * — exactly the loop body PimTrainer and StreamingTrainer used to
 * own privately. The offline trainer runs one begin/step/finish
 * sequence over a fixed dataset; the streaming trainer re-arms the
 * session once per generation with loadGeneration(); the fleet
 * scheduler (src/fleet) drives many sessions in slices, pausing and
 * checkpointing each at preemption and restoring it on a fresh
 * machine at the next grant.
 *
 * Checkpoint/restore, the point of the abstraction: checkpoint() at
 * any round boundary captures the complete session state —
 * aggregate Q-table, LCG streams, epsilon schedule position,
 * generation/round counters, fault-plan cursor, live-core set,
 * stream clock, and the per-bucket partial time sums — and a fresh
 * process can restore*() it and continue **bit-identically** to the
 * uninterrupted run, for any host-pool size and with or without an
 * active fault plan. The invariants that make this exact:
 *
 *  - Fault draws are pure in (seed, kind, site, core); restoring the
 *    per-stream fault-site cursor replays the same schedule.
 *  - Launch timing depends only on the launch's own effective cycles
 *    (never on cumulative core clocks), and transfer timing only on
 *    (bytes, live cores) — both restored.
 *  - MRAM is rebuilt functionally (poke, no time charge): the data
 *    region from the deterministic partition over the restored live
 *    set, the Q region from the aggregate's exact wire bytes.
 *  - The reported TimeBreakdown continues from the checkpoint's
 *    per-bucket partial sums in event order, which equals full
 *    in-order summation (double addition is order-deterministic).
 *
 * Out of scope, documented rather than restored: the post-restore
 * Timeline holds only post-restore events (traces of a resumed run
 * are partial), and telemetry counters restart (observation never
 * was part of the determinism contract). Multi-agent training has no
 * rounds to checkpoint at and stays a PimTrainer special.
 */

#ifndef SWIFTRL_SWIFTRL_SESSION_HH
#define SWIFTRL_SWIFTRL_SESSION_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pimsim/command_stream.hh"
#include "pimsim/pim_system.hh"
#include "telemetry/tracing.hh"
#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "swiftrl/pim_kernels.hh"
#include "swiftrl/qtable_io.hh"
#include "swiftrl/sharding.hh"
#include "swiftrl/retry_policy.hh"
#include "swiftrl/time_breakdown.hh"
#include "swiftrl/workload.hh"

namespace swiftrl {

namespace telemetry {
class MetricRegistry;
class EngineCollector;
}

/** Session configuration: the trainer-agnostic training knobs. */
struct SessionConfig
{
    /** Workload variant the PIM side trains. */
    Workload workload;

    /** Hyper-parameters; hyper.episodes is the episode budget per
     *  begin/loadGeneration arming. */
    rlcore::Hyper hyper;

    /** Synchronisation period tau (episodes per round). */
    int tau = 50;

    /** Transitions per SEQ/STR staging block. */
    std::size_t blockTransitions = 128;

    /** Hardware threads per PIM core. */
    unsigned tasklets = 1;

    /** Fault recovery policy (see PimTrainConfig::retry). */
    RetryPolicy retry;

    /** Visit-weighted aggregation (offline mode only). */
    bool weightedAggregation = false;

    /**
     * Per-round epsilon decay: after each round the working epsilon
     * is multiplied by this factor. 1.0 (the default) keeps epsilon
     * constant bit-exactly (x * 1.0f == x), so the schedule is free
     * unless asked for. The current position is checkpointed.
     */
    float epsilonDecay = 1.0f;

    /** Streaming mode: per-generation datasets, plain averaging,
     *  per-generation metrics left to the driver. */
    bool streaming = false;

    /**
     * Q-table shards for procedurally scaled state spaces: 0 (the
     * default) replicates the whole table on every core (the paper's
     * scheme); S >= 1 partitions the state space into S contiguous
     * ranges (rlcore::ShardMap), routes each transition to the shard
     * owning its current state, and replicates each shard's slice
     * over a contiguous core group. Sync rounds then gather slices,
     * reduce each shard group through the hierarchical aggregation
     * tree (TransferModel::aggregationTreeSeconds), and push back
     * slices plus per-core remote-row halos. shards == 1 is the
     * degenerate single-shard layout and stays bit-identical to
     * unsharded training. Offline mode only; incompatible with
     * streaming and weightedAggregation.
     */
    std::size_t shards = 0;

    /**
     * Run eligible launches through the lockstep batch interpreter
     * (see PimTrainConfig::batchExec). Eligible means tasklets == 1
     * and no visit tracking (weightedAggregation); ineligible
     * launches silently use the scalar path. Modelled results are
     * bit-identical either way, so this is NOT checkpoint identity —
     * a run checkpointed with one setting restores under the other.
     */
    bool batchExec =
#ifdef SWIFTRL_BATCH_EXEC
        true;
#else
        false;
#endif

    /** Telemetry destination (null = off). Observation-only. */
    telemetry::MetricRegistry *metrics = nullptr;

    /**
     * Causal-trace parent for this session's "session.run" span
     * (0 = ambient/root). The fleet scheduler sets its grant span's
     * id here so every round, engine command, and serve batch of a
     * job transitively parents up to the fleet job. Observation-only.
     */
    std::uint64_t traceParent = 0;
};

/**
 * Complete state of a paused session, version-tagged. Produced by
 * TrainerSession::checkpoint(), consumed by restore*(); persisted
 * with saveCheckpoint()/loadCheckpoint(). The `streaming*` block
 * carries the streaming driver's pipeline state (host clock, recent
 * aggregates, behaviour policy); it is empty/zero for offline
 * sessions.
 *
 * On-disk format ("SWRLCK01", implemented in session.cc):
 *
 *     magic "SWRLCK01" | payload | u64 FNV-1a(payload)
 *
 * little-endian throughout (matching rlcore/serialization.cc). The
 * payload is the fields of this struct in declaration order, each
 * scalar written raw and each vector as u64 length + raw elements;
 * it begins with u32 kVersion, and loads of any other version fail
 * loudly rather than guess at a layout. The trailing checksum makes
 * truncation and corruption detectable before any field is trusted.
 * Bump kVersion on any layout change.
 *
 * Identity vs placement: the identity block pins the session's
 * *logical* machine — numDpus is the core count the LCG streams,
 * partition, and aggregate were computed with, and restoring onto a
 * different count is (correctly) refused by checkpointMismatch().
 * Which *physical* cores or ranks host those numDpus logical cores
 * is NOT identity: the simulator is functional, so a checkpoint
 * taken on one rank subset restores bit-identically on any other
 * (the fleet scheduler, src/fleet, preempts and migrates jobs on
 * exactly this property — see docs/SCHEDULER.md).
 */
struct SessionCheckpoint
{
    /** Format version this struct describes. Version 2 added the
     *  shard count to the identity block; version-1 files still load
     *  (they predate sharding, so shards = 0). Loads of any other
     *  version fail loudly. */
    static constexpr std::uint32_t kVersion = 2;

    // --- identity (must match the restoring session's config) ------
    bool streaming = false;
    Workload workload;
    rlcore::Hyper hyper;
    int tau = 0;
    std::size_t blockTransitions = 0;
    unsigned tasklets = 1;
    bool weightedAggregation = false;
    float epsilonDecay = 1.0f;
    std::size_t numDpus = 0;
    /** Q-table shard count (0 = unsharded; see SessionConfig). The
     *  shard plan, routing, and halos are re-derived on restore —
     *  only the count is identity. */
    std::size_t shards = 0;
    rlcore::StateId numStates = 0;
    rlcore::ActionId numActions = 0;

    // --- progress ---------------------------------------------------
    /** Episodes left in the currently armed dataset/generation. */
    int episodesRemaining = 0;
    /** Communication rounds completed so far (whole run). */
    int commRounds = 0;
    /** loadGeneration() calls so far (streaming; 0 offline). */
    int generationsStarted = 0;
    /** Per-round max |dQ| trace (offline; empty streaming). */
    std::vector<float> roundDeltas;
    /** Epsilon schedule position. */
    float epsilonNow = 0.0f;

    // --- learner state ----------------------------------------------
    /** Aggregated Q-table values, row-major. */
    std::vector<float> aggregated;
    /** Per-(core, tasklet) LCG states. */
    std::vector<std::uint32_t> lcgStates;

    // --- engine state -----------------------------------------------
    /** Stream clock at the checkpoint, modelled seconds. */
    double cursor = 0.0;
    /** Fault sites consumed. */
    std::uint64_t faultSites = 0;
    /** Cores lost to permanent dropouts, ascending ids. */
    std::vector<std::uint64_t> deadDpus;
    /** Per-bucket partial time sums at the checkpoint. */
    TimeBreakdown timeBase;
    /** Fault events recorded before the checkpoint. */
    int faultEventsBase = 0;
    /** Cumulative per-core cycle clocks (restored onto the Dpus so
     *  stats reports of a resumed run cover the whole run). */
    std::vector<std::uint64_t> dpuCycles;

    // --- streaming driver state (zero/empty offline) ----------------
    /** When the actor pool is next free, modelled seconds. */
    double streamingHostClock = 0.0;
    /** Behaviour-policy refreshes performed so far. */
    int streamingPolicyRefreshes = 0;
    /** Actor busy seconds spent collecting so far. */
    double streamingCollectSeconds = 0.0;
    /** Tail (last <= 2) of the per-generation train-end clocks. */
    std::vector<double> streamingTrainEndTail;
    /** Tail (last <= 2) of the per-generation aggregates. */
    std::vector<std::vector<float>> streamingQAfterTail;
    /** Is the behaviour policy epsilon-greedy (vs uniform-random)? */
    bool streamingPolicyActive = false;
    /** Epsilon of the refreshed behaviour policy. */
    float streamingPolicyEpsilon = 0.0f;
    /** Q-table the behaviour policy greedifies, row-major. */
    std::vector<float> streamingPolicySource;
};

/** Persist @p ck to @p path; fatal on I/O failure. */
void saveCheckpoint(const SessionCheckpoint &ck,
                    const std::string &path);

/** Load a checkpoint; fatal on I/O failure, corruption, or an
 *  unsupported format version. */
SessionCheckpoint loadCheckpoint(const std::string &path);

/**
 * Non-fatal variants for embedders (the C API), which must report
 * errors through return codes instead of aborting the host process.
 * On failure they return false / nullopt and, when @p error is
 * non-null, store the reason the fatal variant would have printed.
 */
bool trySaveCheckpoint(const SessionCheckpoint &ck,
                       const std::string &path, std::string *error);
std::optional<SessionCheckpoint>
tryLoadCheckpoint(const std::string &path, std::string *error);

/**
 * The restore identity check: empty when @p ck can be adopted by a
 * session built from @p config on @p num_dpus cores, else the
 * human-readable reason. restore*() performs exactly this comparison
 * and is fatal on a non-empty answer; embedders call it first.
 */
std::string checkpointMismatch(const SessionConfig &config,
                               std::size_t num_dpus,
                               const SessionCheckpoint &ck);

/** Where a session is in its lifecycle. */
enum class SessionState
{
    Init,   ///< constructed; no run begun
    Ready,  ///< between rounds; step()/checkpoint()/pause() legal
    Paused, ///< explicitly paused; resume() to continue
    Done,   ///< final retrieval issued; the session is spent
};

/** The round-granular training core. See file comment. */
class TrainerSession
{
  public:
    /** @param system machine to run on; must outlive the session. */
    TrainerSession(pimsim::PimSystem &system, SessionConfig config);

    ~TrainerSession();

    TrainerSession(const TrainerSession &) = delete;
    TrainerSession &operator=(const TrainerSession &) = delete;

    // --- lifecycle ---------------------------------------------------

    /**
     * Begin an offline run: partition @p data over all cores, scatter
     * it, broadcast the zero Q-table, seed the LCG streams, and arm
     * hyper.episodes episodes. @p data must outlive the session's
     * stepping (the dropout redistribution path re-packs from it).
     */
    void beginOffline(const rlcore::Dataset &data,
                      rlcore::StateId num_states,
                      rlcore::ActionId num_actions);

    /**
     * Begin a streaming run: broadcast the zero Q-table and seed the
     * LCG streams. No dataset yet — arm each generation with
     * loadGeneration().
     */
    void beginStreaming(rlcore::StateId num_states,
                        rlcore::ActionId num_actions);

    /**
     * Arm one streaming generation: partition @p gen_data over the
     * surviving cores, scatter it ("scatter:gen<g>"), and reset the
     * episode budget. @p gen_data must outlive this generation's
     * steps.
     */
    void loadGeneration(const rlcore::Dataset &gen_data);

    /**
     * Re-attach the in-progress generation's dataset after a
     * mid-generation restore: rebuilds the MRAM data region
     * functionally (the scatter's cost is part of the checkpointed
     * prefix) without touching the episode budget. The caller
     * re-collects @p gen_data deterministically (collection is pure
     * in (policy, seed, generation)).
     */
    void attachGeneration(const rlcore::Dataset &gen_data);

    /**
     * Run one tau-round: launch -> gather -> aggregate -> reduce ->
     * broadcast, with fault recovery. Returns false (and does
     * nothing) once the armed episode budget is exhausted.
     */
    bool step();

    /**
     * Pause at the current round boundary; step() becomes illegal
     * until resume(). Legal only in Ready. Pausing is bookkeeping —
     * it enqueues nothing and charges nothing, so pause();resume()
     * round-trips are free and a paused session's stream clock holds
     * still. Checkpointing does not require pausing — the session is
     * quiescent between any two steps — but a preempting scheduler
     * typically pauses first so an accidental step() between
     * checkpoint() and teardown fails loudly instead of silently
     * diverging from the captured state.
     */
    void pause();

    /** Leave Paused and make step() legal again. The session resumes
     *  exactly where it paused: same round, same epsilon, same
     *  stream clock. */
    void resume();

    /**
     * Issue the final retrieval (on-core descale + "gather:final")
     * and move to Done. Idempotence is not offered: a session
     * finishes once.
     */
    void finishRetrieval();

    // --- checkpoint / restore ---------------------------------------

    /**
     * Capture the complete session state at the current round
     * boundary. Legal in Ready or Paused. Streaming drivers fill the
     * streaming* block afterwards (the session cannot see the host
     * pipeline).
     */
    SessionCheckpoint checkpoint() const;

    /**
     * Rebuild a mid-run offline session from @p ck on a fresh system:
     * validates the identity block, restores learner + engine state,
     * and reconstructs MRAM functionally. The session lands in Ready,
     * bit-identical to the one that checkpointed.
     */
    void restoreOffline(const rlcore::Dataset &data,
                        const SessionCheckpoint &ck);

    /**
     * Streaming counterpart. Rebuilds the Q region only; the driver
     * re-attaches the in-progress generation's data (if any) with
     * attachGeneration().
     */
    void restoreStreaming(const SessionCheckpoint &ck);

    // --- accessors ---------------------------------------------------

    SessionState state() const { return _state; }

    /** Episodes left in the armed budget (0 at a generation/run
     *  boundary). */
    int episodesRemaining() const { return _episodesRemaining; }

    /** Communication rounds completed (whole run). */
    int commRounds() const { return _commRounds; }

    /** loadGeneration() calls so far. */
    int generationsStarted() const { return _generation; }

    /** The current host-side aggregate. */
    const rlcore::QTable &aggregated() const { return _aggregated; }

    /** Per-round max |dQ| so far (offline mode). */
    const std::vector<float> &roundDeltas() const
    {
        return _roundDeltas;
    }

    /** Current epsilon schedule position. */
    float epsilon() const { return _epsilonNow; }

    /** The session's command stream (the streaming driver records
     *  host spans and waits on it). */
    pimsim::CommandStream &stream();

    /** Whole-run time breakdown: checkpointed base plus this
     *  process's timeline, accumulated in event order. */
    TimeBreakdown currentTime() const;

    /** Whole-run fault count: checkpointed base plus this process's
     *  timeline. */
    int faultsDetected() const;

    /** Cores lost over the whole run. */
    std::size_t coresLost() const;

    /** The wire I/O helper (shared fixed-point scale etc.). */
    const QTableIo &qio() const { return _qio; }

    /** MRAM byte offset of the transition region. */
    std::size_t dataOffset() const { return _dataOffset; }

  private:
    /** Shared begin work: stream + collector + LCG seeding. */
    void start(rlcore::StateId num_states,
               rlcore::ActionId num_actions);

    /** Open the "session.run" lifecycle span at the current stream
     *  clock; @p how is "begin" or "restore". Observation-only. */
    void openRunSpan(const char *how);

    /** Fill _params/_kernel once shapes are known. */
    void buildKernel();

    /** Pack @p data per _firsts/_counts into wire chunks. */
    std::vector<std::vector<std::uint8_t>>
    packChunks(const rlcore::Dataset &data) const;

    /** partitionDataset over the surviving cores into
     *  _firsts/_counts (dead cores get empty chunks). */
    void repartition(const rlcore::Dataset &data);

    /** Scatter _activeData per the current partition. */
    void scatterActive(pimsim::TimeBucket bucket,
                       std::string_view label);

    /** Dropout recovery: repartition + recovery-track rescatter +
     *  aggregate rebroadcast. */
    void redistribute();

    /** True once the session runs with a shard plan. */
    bool shardedMode() const { return _plan != nullptr; }

    /**
     * Build the sharded layout for the armed dataset: plan, routing,
     * MRAM offsets (slice | data | halo), per-core assignment, halos,
     * and the kernel parameters. Fatal when the plan is invalid or
     * the conservative MRAM demand bound exceeds the bank.
     */
    void setupShardLayout();

    /**
     * Sharded repartition: split each shard's routed transitions over
     * its *surviving* replicas (fatal when a shard group loses every
     * replica — its slice rows would stop training silently) and
     * rebuild every core's halo.
     */
    void repartitionSharded();

    /** Localized wire chunks per the current sharded partition. */
    std::vector<std::vector<std::uint8_t>> packShardedChunks() const;

    /** Scatter the localized chunks (push or poke). */
    void scatterSharded(pimsim::TimeBucket bucket,
                        std::string_view label, bool poke);

    /** Per-core slice wire of the aggregate (push or poke). */
    void pushShardSlices(pimsim::TimeBucket bucket,
                         std::string_view label, bool poke);

    /** Per-core halo wire of the aggregate (push or poke). */
    void pushShardHalos(pimsim::TimeBucket bucket,
                        std::string_view label, bool poke);

    /**
     * Sharded gather + per-shard-group slice averaging into
     * _aggregated. Returns the largest live replica group (the
     * aggregation tree's depth driver).
     */
    std::size_t shardedAggregate();

    /** Visit-count-weighted mean (offline weighted aggregation). */
    rlcore::QTable weightedAverage(
        const std::vector<rlcore::QTable> &tables,
        const std::vector<std::vector<std::uint8_t>> &raw_counts,
        const rlcore::QTable &previous) const;

    /** Shared restore work: identity check + engine + learner. */
    void adopt(const SessionCheckpoint &ck);

    pimsim::PimSystem &_system;
    SessionConfig _config;
    QTableIo _qio;

    SessionState _state = SessionState::Init;

    rlcore::StateId _numStates = 0;
    rlcore::ActionId _numActions = 0;
    std::size_t _entries = 0;
    std::size_t _visitsOffset = 0;
    std::size_t _dataOffset = 0;

    /** Dataset the armed rounds train on (offline: the whole run's;
     *  streaming: the current generation's). Not owned. */
    const rlcore::Dataset *_activeData = nullptr;

    std::unique_ptr<pimsim::CommandStream> _stream;
    std::unique_ptr<telemetry::EngineCollector> _collector;

    std::vector<std::size_t> _firsts;
    std::vector<std::size_t> _counts;
    std::vector<std::uint32_t> _lcgStates;
    rlcore::QTable _aggregated;

    /** Sharded-mode state (null/empty when unsharded). The plan and
     *  routing are pure functions of (shape, shards, numDpus, data),
     *  so none of this is checkpointed — restore re-derives it. */
    std::unique_ptr<ShardPlan> _plan;
    ShardRouting _routing;
    std::vector<std::vector<rlcore::StateId>> _haloStates;
    std::vector<std::size_t> _haloRows;
    std::size_t _sliceRows = 0;
    std::size_t _sliceEntries = 0;
    std::size_t _haloOffset = 0;

    int _episodesRemaining = 0;
    int _commRounds = 0;
    int _generation = 0;
    std::vector<float> _roundDeltas;
    float _epsilonNow = 0.0f;

    /** Restore bases (zero for a from-scratch run). */
    TimeBreakdown _timeBase;
    int _faultEventsBase = 0;

    /** Lifecycle span ("session.run"), opened by start()/adopt() and
     *  finished by finishRetrieval() or the destructor (outcome
     *  "preempted" when torn down Paused). Observation-only. */
    telemetry::Span _traceSpan;
    /** faultsDetected() at the last traced round start (to stamp a
     *  round's outcome "retried"); only maintained while tracing. */
    int _traceFaultsSeen = 0;

    KernelParams _params;
    pimsim::KernelFn _kernel;
    pimsim::BatchKernelFn _batchKernel;

    /** Does the armed kernel qualify for batch interpretation? */
    bool batchEligible() const
    {
        return _config.batchExec && _config.tasklets == 1 &&
               !_params.trackVisits;
    }
};

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_SESSION_HH
