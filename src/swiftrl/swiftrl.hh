/**
 * @file
 * Umbrella header: the SwiftRL public API.
 *
 * Typical use:
 * @code
 *   auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
 *   auto data = swiftrl::rlcore::collectRandomDataset(*env, 100000, 1);
 *
 *   swiftrl::pimsim::PimConfig pim;
 *   pim.numDpus = 500;
 *   swiftrl::pimsim::PimSystem system(pim);
 *
 *   swiftrl::PimTrainConfig cfg;
 *   cfg.workload = {swiftrl::rlcore::Algorithm::QLearning,
 *                   swiftrl::rlcore::Sampling::Seq,
 *                   swiftrl::rlcore::NumericFormat::Int32};
 *   swiftrl::PimTrainer trainer(system, cfg);
 *   auto result = trainer.train(data, env->numStates(),
 *                               env->numActions());
 *
 *   auto quality = swiftrl::rlcore::evaluateGreedy(
 *       *env, result.finalQ, 1000, 7);
 * @endcode
 */

#ifndef SWIFTRL_SWIFTRL_HH
#define SWIFTRL_SWIFTRL_HH

#include "pimsim/pim_system.hh"
#include "rlcore/dataset.hh"
#include "rlcore/evaluate.hh"
#include "rlcore/policy.hh"
#include "rlcore/qtable.hh"
#include "rlcore/trainers.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/registry.hh"
#include "rlenv/taxi.hh"
#include "swiftrl/partition.hh"
#include "swiftrl/pim_trainer.hh"
#include "swiftrl/streaming_trainer.hh"
#include "swiftrl/time_breakdown.hh"
#include "swiftrl/workload.hh"

#endif // SWIFTRL_SWIFTRL_HH
