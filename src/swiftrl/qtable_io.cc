#include "swiftrl/qtable_io.hh"

#include <cstring>

#include "pimsim/pim_system.hh"

namespace swiftrl {

using pimsim::TimeBucket;
using rlcore::ActionId;
using rlcore::NumericFormat;
using rlcore::QTable;
using rlcore::StateId;

std::int32_t
QTableIo::fixedScale() const
{
    if (_workload.format == NumericFormat::Int8)
        return 1 << _hyper.int8Shift;
    return _hyper.scale;
}

double
QTableIo::conversionSeconds(const pimsim::CommandStream &stream,
                            std::size_t q_entries, bool to_float) const
{
    if (_workload.format == NumericFormat::Fp32)
        return 0.0;
    const auto &model = stream.system().config().costModel;
    using pimsim::OpClass;
    // Descale: int divide (or a shift for the power-of-two INT8
    // scale) + int-to-float conversion per entry. Requantise: FP32
    // multiply + float-to-int per entry.
    const bool pow2 = _workload.format == NumericFormat::Int8;
    const pimsim::Cycles descale_op =
        pow2 ? model.cyclesFor(OpClass::IntAlu)
             : model.cyclesFor(OpClass::Int32Div);
    const pimsim::Cycles per_entry =
        to_float ? descale_op + 2 * model.cyclesFor(OpClass::IntAlu)
                 : model.cyclesFor(OpClass::Fp32Mul) +
                       2 * model.cyclesFor(OpClass::IntAlu);
    return model.seconds(per_entry *
                         static_cast<pimsim::Cycles>(q_entries));
}

void
QTableIo::initQTables(pimsim::CommandStream &stream, StateId ns,
                      ActionId na) const
{
    const std::size_t q_bytes = static_cast<std::size_t>(ns) *
                                static_cast<std::size_t>(na) *
                                rlcore::kQWireBytesPerEntry;
    const std::vector<std::uint8_t> zeros(q_bytes, 0);
    stream.pushBroadcast(qOffset(), zeros, TimeBucket::CpuToPim,
                         "broadcast:qinit");
}

std::vector<QTable>
QTableIo::gatherQTables(pimsim::CommandStream &stream, StateId ns,
                        ActionId na, TimeBucket bucket,
                        const RetryPolicy *retry) const
{
    const std::size_t entries = static_cast<std::size_t>(ns) *
                                static_cast<std::size_t>(na);
    const std::size_t q_bytes =
        entries * rlcore::kQWireBytesPerEntry;
    std::vector<std::vector<std::uint8_t>> raw;
    // INT32 kernels descale their tables to FP32 on-core before the
    // transfer (Sec. 4.2); the conversion runs in parallel on all
    // cores, so it costs one per-core table pass. Charged once even
    // under retries — a corrupted wire transfer does not un-convert
    // the table sitting in the bank.
    const double convert =
        conversionSeconds(stream, entries, /*to_float=*/true);
    if (convert > 0.0)
        stream.onCoreCompute(convert, bucket, "convert:descale");
    // No policy = no recovery: a single fault is then fatal.
    static constexpr RetryPolicy kNoRetries{.limit = 0};
    runWithRecovery(
        stream, retry ? *retry : kNoRetries, "gather:q",
        [&] {
            return stream.gather(qOffset(), q_bytes, raw, bucket,
                                 "gather:q");
        },
        [](const pimsim::CommandError &) {
            SWIFTRL_PANIC("gathers cannot drop cores");
        });

    std::vector<QTable> tables;
    tables.reserve(raw.size());
    for (const auto &bytes : raw) {
        QTable t(ns, na);
        if (_workload.format == NumericFormat::Fp32) {
            std::memcpy(t.values().data(), bytes.data(), q_bytes);
        } else {
            // Functional descale in double precision: exact for every
            // raw value below 2^53, so a 1-core run roundtrips
            // bit-perfectly (the modelled cost above is what the
            // on-core float conversion would take).
            const auto *fixed =
                reinterpret_cast<const std::int32_t *>(bytes.data());
            for (std::size_t i = 0; i < entries; ++i) {
                t.values()[i] = static_cast<float>(
                    static_cast<double>(fixed[i]) /
                    static_cast<double>(fixedScale()));
            }
        }
        tables.push_back(std::move(t));
    }
    return tables;
}

std::vector<std::uint8_t>
QTableIo::packWire(const QTable &q) const
{
    std::vector<std::uint8_t> bytes(q.byteSize());
    if (_workload.format == NumericFormat::Fp32) {
        std::memcpy(bytes.data(), q.values().data(), bytes.size());
    } else {
        const auto fixed = q.toFixed(fixedScale());
        std::memcpy(bytes.data(), fixed.data(), bytes.size());
    }
    return bytes;
}

void
QTableIo::broadcastQTable(pimsim::CommandStream &stream,
                          const QTable &q, TimeBucket bucket,
                          std::string_view label) const
{
    const std::size_t entries = q.entryCount();
    const std::vector<std::uint8_t> bytes = packWire(q);
    stream.pushBroadcast(qOffset(), bytes, bucket, label);
    // Re-quantisation back to raw fixed point happens on-core after
    // the broadcast lands.
    const double convert =
        conversionSeconds(stream, entries, /*to_float=*/false);
    if (convert > 0.0)
        stream.onCoreCompute(convert, bucket, "convert:requantise");
}

} // namespace swiftrl
