/**
 * @file
 * Dataset partitioning: split the experience dataset into per-core
 * contiguous chunks of near-equal size (SwiftRL's first execution
 * step, Figure 4 (1)).
 */

#ifndef SWIFTRL_SWIFTRL_PARTITION_HH
#define SWIFTRL_SWIFTRL_PARTITION_HH

#include <cstddef>
#include <vector>

namespace swiftrl {

/** A contiguous range of dataset indices assigned to one PIM core. */
struct Chunk
{
    std::size_t first = 0;
    std::size_t count = 0;

    bool operator==(const Chunk &) const = default;
};

/**
 * Split @p total transitions across @p parts cores.
 *
 * Chunks are contiguous, cover [0, total) exactly once, and differ in
 * size by at most one transition. The remainder goes to the
 * lowest-indexed cores, deterministically. When total < parts the
 * first @p total cores each receive one transition and the remaining
 * chunks are empty — empty chunks are legal everywhere downstream
 * (a core with an empty chunk launches, trains on nothing, and
 * contributes its unchanged table to aggregation), so a tiny dataset
 * on a large fleet is a valid, if wasteful, configuration rather
 * than a fatal one. Only parts == 0 is fatal: it cannot name an
 * owner for any transition.
 */
std::vector<Chunk> partitionDataset(std::size_t total,
                                    std::size_t parts);

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_PARTITION_HH
