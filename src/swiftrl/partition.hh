/**
 * @file
 * Dataset partitioning: split the experience dataset into per-core
 * contiguous chunks of near-equal size (SwiftRL's first execution
 * step, Figure 4 (1)).
 */

#ifndef SWIFTRL_SWIFTRL_PARTITION_HH
#define SWIFTRL_SWIFTRL_PARTITION_HH

#include <cstddef>
#include <vector>

namespace swiftrl {

/** A contiguous range of dataset indices assigned to one PIM core. */
struct Chunk
{
    std::size_t first = 0;
    std::size_t count = 0;

    bool operator==(const Chunk &) const = default;
};

/**
 * Split @p total transitions across @p parts cores.
 *
 * Chunks are contiguous, cover [0, total) exactly once, and differ in
 * size by at most one transition. Fatal when total < parts — SwiftRL
 * assigns every core a non-empty chunk, so a smaller dataset is a
 * configuration error the user must fix (fewer cores or more data).
 */
std::vector<Chunk> partitionDataset(std::size_t total,
                                    std::size_t parts);

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_PARTITION_HH
