/**
 * @file
 * The streaming actor–learner extension: online training where CPU
 * actor threads roll out a behaviour policy into transition blocks
 * while the PIM side trains on the *previous* generation's data.
 *
 * The paper trains offline — collect everything, then train
 * (Sec. 3.2.1). This trainer pipelines the two on one command stream:
 * generation k's scatter / kernel / sync commands occupy the PIM
 * tracks of the timeline while the host track shows generation k+1's
 * collection slices running concurrently (CommandStream::recordHostSpan
 * + waitUntil). Periodically the aggregated Q-table is fed back to the
 * actors as an epsilon-greedy behaviour policy ("other policies such
 * as epsilon greedy ... can also be used", Sec. 3.2.1).
 *
 * Determinism contract: the final Q-table is bit-identical for any
 * actor-thread count and for overlap on/off. Collection is
 * block-index-pure (rlcore::collectPolicyBlocks), the policy-refresh
 * schedule is generation-indexed (never time-based), and `overlap`
 * changes only the timing gates — so actors and overlap move modelled
 * time, never values. Verified by tests/test_streaming.cc.
 */

#ifndef SWIFTRL_SWIFTRL_STREAMING_TRAINER_HH
#define SWIFTRL_SWIFTRL_STREAMING_TRAINER_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "baselines/platform_model.hh"
#include "pimsim/command_stream.hh"
#include "pimsim/pim_system.hh"
#include "pimsim/timeline.hh"
#include "rlcore/collection.hh"
#include "rlcore/qtable.hh"
#include "swiftrl/qtable_io.hh"
#include "swiftrl/retry_policy.hh"
#include "swiftrl/session.hh"
#include "swiftrl/time_breakdown.hh"
#include "swiftrl/workload.hh"

namespace swiftrl {

namespace telemetry {
class MetricRegistry;
}

/** Configuration for one streaming (online) training run. */
struct StreamingConfig
{
    /** Which workload variant the PIM side trains. Weighted
     *  aggregation is not available in streaming mode. */
    Workload workload;

    /**
     * Hyper-parameters; hyper.episodes is the episode count *per
     * generation* (each generation trains its own freshly collected
     * dataset for this many episodes).
     */
    rlcore::Hyper hyper;

    /** Synchronisation period tau within a generation's training. */
    int tau = 50;

    /**
     * Transitions per staging block — both the kernels' SEQ/STR
     * staging granularity and the size of the independent collection
     * blocks the actors produce.
     */
    std::size_t blockTransitions = 128;

    /** Hardware threads per PIM core. */
    unsigned tasklets = 1;

    /**
     * Run eligible launches through the lockstep batch interpreter
     * (see PimTrainConfig::batchExec). Bit-identical modelled
     * results; host wall-clock only.
     */
    bool batchExec =
#ifdef SWIFTRL_BATCH_EXEC
        true;
#else
        false;
#endif

    /** Collect/train generations to pipeline. */
    int generations = 8;

    /** Transitions collected (and trained on) per generation. */
    std::size_t transitionsPerGeneration = 16384;

    /**
     * CPU actor threads collecting each generation. Affects modelled
     * collection time (blocks are round-robin across actors) and the
     * host thread count actually used — never the collected data,
     * which is block-index-pure.
     */
    unsigned actors = 1;

    /**
     * Refresh the actors' behaviour policy every this many
     * generations (0 = never; actors stay uniform-random). At
     * generation g >= 2 with g % refreshPeriod == 0 the behaviour
     * policy becomes epsilon-greedy over the aggregate trained
     * through generation g-2 — the newest table available when g's
     * collection starts, given that g-1 is still training under the
     * overlap.
     */
    int refreshPeriod = 0;

    /** Exploration rate of the refreshed behaviour policy. */
    float behaviourEpsilon = 0.2f;

    /** Root seed of the collection streams (independent of
     *  hyper.seed, which drives the on-core kernels). */
    std::uint64_t collectSeed = 1234;

    /**
     * Modelled host cost of producing one transition (env step +
     * policy query + log append). Default from the CPU platform
     * model; see docs/COSTMODEL.md.
     */
    double collectSecPerTransition = baselines::kActorStepSec;

    /**
     * Fault recovery under an active PimConfig::faultPlan: bounded
     * relaunch with modelled backoff for transient/corruption faults;
     * on a permanent dropout the *current generation's* dataset is
     * re-partitioned over the survivors and the interrupted round
     * restarted from the last aggregate. Unused (and cost-free) when
     * the fault plan is inert.
     */
    RetryPolicy retry;

    /**
     * true: collection of generation k+1 overlaps training of k (the
     * streaming pipeline). false: strict collect-then-train baseline.
     * Timing-only — the functional command order is identical, so the
     * final Q-table is bit-identical between the two settings (how
     * bench/ext_streaming_overlap.cc compares them fairly).
     */
    bool overlap = true;

    /**
     * Per-round epsilon decay of the *training* epsilon (SARSA's
     * next-action exploration), multiplied in after every
     * synchronisation round across all generations. The default 1.0
     * keeps it constant bit-exactly. Independent of
     * behaviourEpsilon, which drives the actors.
     */
    float epsilonDecay = 1.0f;

    /**
     * Telemetry destination (null = off, the default). When set, the
     * trainer attaches an EngineCollector to its command stream and
     * emits per-generation rl_* metrics (behaviour reward, max |ΔQ|,
     * collection seconds) on top of the shared training metrics —
     * see docs/OBSERVABILITY.md. Purely observational.
     */
    telemetry::MetricRegistry *metrics = nullptr;
};

/** Output of a streaming training run. */
struct StreamingResult
{
    /** Aggregated final Q-table after the last generation. */
    rlcore::QTable finalQ;

    /**
     * Busy-time breakdown from the timeline. `time.hostCollect` is
     * the actor-side busy time; it overlaps the PIM components, so
     * the run's makespan is `endToEnd`, not a sum.
     */
    TimeBreakdown time;

    /** Full command timeline: PIM tracks plus the host-collect
     *  track. Export with Timeline::writeChromeTrace. */
    pimsim::Timeline timeline;

    /** Modelled makespan: end of the last event on any track. */
    double endToEnd = 0.0;

    /** Actor busy seconds spent collecting (excludes refreshes). */
    double collectSeconds = 0.0;

    /** Generations executed. */
    int generations = 0;

    /** Inter-core communication rounds across all generations. */
    int commRounds = 0;

    /** Behaviour-policy refreshes performed. */
    int policyRefreshes = 0;

    /** Total transitions collected and trained on. */
    std::size_t transitions = 0;

    /** PIM cores that participated. */
    std::size_t coresUsed = 0;

    /** Faulted command attempts absorbed by the retry policy. */
    int faultsDetected = 0;

    /** Cores lost to permanent dropouts (work redistributed). */
    std::size_t coresLost = 0;

    StreamingResult() : finalQ(1, 1) {}
};

/**
 * Drives the streaming actor–learner pipeline on a PimSystem. One
 * train() call is one full run: `generations` rounds of host-side
 * collection feeding PIM-side tau-synchronised training, double
 * buffered so the two stages overlap in modelled time.
 */
class StreamingTrainer
{
  public:
    /** @param system machine to run on; must outlive the trainer. */
    StreamingTrainer(pimsim::PimSystem &system, StreamingConfig config);

    /**
     * Run the full pipeline. @p make_env supplies fresh environment
     * instances for the actor threads (one per collection block).
     */
    StreamingResult train(const rlcore::EnvFactory &make_env,
                          rlcore::StateId num_states,
                          rlcore::ActionId num_actions);

    /**
     * Run until @p rounds synchronisation rounds have completed
     * (counted across generations), then checkpoint and stop. The
     * checkpoint carries the host pipeline state (actor clock,
     * behaviour policy, recent aggregates) on top of the session
     * state, so resume() in a fresh process continues
     * bit-identically — mid-generation pauses re-collect the
     * in-flight generation's data deterministically on restore.
     */
    SessionCheckpoint trainUntilRound(
        const rlcore::EnvFactory &make_env,
        rlcore::StateId num_states, rlcore::ActionId num_actions,
        int rounds);

    /**
     * Continue a checkpointed streaming run to completion. The
     * trainer configuration (including collectSeed, refreshPeriod,
     * and transitionsPerGeneration — which the checkpoint's identity
     * block cannot see) must match the checkpointed run's.
     */
    StreamingResult resume(const rlcore::EnvFactory &make_env,
                           rlcore::StateId num_states,
                           rlcore::ActionId num_actions,
                           const SessionCheckpoint &ck);

    /** Configuration in use. */
    const StreamingConfig &config() const { return _config; }

  private:
    /** The session configuration this trainer's runs use. */
    SessionConfig sessionConfig() const;

    /**
     * One code path for train / trainUntilRound / resume: drive the
     * actor pipeline around a TrainerSession from either a fresh
     * begin or @p restore_from, stopping at @p pause_at_round
     * (absolute round count, -1 = never) into @p out_ck, else
     * finishing the run into the result.
     */
    StreamingResult runImpl(const rlcore::EnvFactory &make_env,
                            rlcore::StateId num_states,
                            rlcore::ActionId num_actions,
                            const SessionCheckpoint *restore_from,
                            int pause_at_round,
                            SessionCheckpoint *out_ck);

    /**
     * Modelled duration of one generation's collection: the busiest
     * actor's share of the round-robin block assignment, times the
     * per-transition cost.
     */
    double collectDuration(std::size_t num_transitions) const;

    pimsim::PimSystem &_system;
    StreamingConfig _config;
};

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_STREAMING_TRAINER_HH
