#include "swiftrl/sharding.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace swiftrl {

using rlcore::ActionId;
using rlcore::Dataset;
using rlcore::PackedTransition;
using rlcore::QTable;
using rlcore::ShardMap;
using rlcore::StateId;

namespace {

std::size_t
align8(std::size_t bytes)
{
    return (bytes + 7) / 8 * 8;
}

} // namespace

std::string
shardPlanInvalidReason(StateId num_states, std::size_t num_shards,
                       std::size_t num_dpus)
{
    std::string reason = ShardMap::invalidReason(num_states, num_shards);
    if (!reason.empty())
        return reason;
    if (num_dpus == 0)
        return "no cores to place shards on";
    if (num_dpus < num_shards)
        return "more shards (" + std::to_string(num_shards) +
               ") than cores (" + std::to_string(num_dpus) +
               "); every shard needs at least one replica core";
    return "";
}

ShardPlan
makeShardPlan(StateId num_states, std::size_t num_shards,
              std::size_t num_dpus)
{
    const std::string reason =
        shardPlanInvalidReason(num_states, num_shards, num_dpus);
    if (!reason.empty())
        SWIFTRL_FATAL("invalid shard plan: ", reason);

    ShardPlan plan{ShardMap(num_states, num_shards), {}, {}};
    plan.shardOfCore.resize(num_dpus);
    plan.coresOfShard.resize(num_shards);
    // Near-equal contiguous replica groups, remainder to the low
    // shards — the same determinism rule as partitionDataset.
    const std::size_t base = num_dpus / num_shards;
    const std::size_t extra = num_dpus % num_shards;
    std::size_t core = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
        const std::size_t replicas = base + (s < extra ? 1 : 0);
        for (std::size_t r = 0; r < replicas; ++r, ++core) {
            plan.shardOfCore[core] = s;
            plan.coresOfShard[s].push_back(core);
        }
    }
    SWIFTRL_ASSERT(core == num_dpus, "replica groups must cover all cores");
    return plan;
}

ShardRouting
routeByOwner(const Dataset &data, const ShardMap &map)
{
    const std::size_t shards = map.numShards();
    ShardRouting routing;
    routing.shardCount.assign(shards, 0);
    for (const StateId s : data.states())
        ++routing.shardCount[map.ownerOf(s)];
    routing.shardFirst.assign(shards, 0);
    for (std::size_t s = 1; s < shards; ++s) {
        routing.shardFirst[s] =
            routing.shardFirst[s - 1] + routing.shardCount[s - 1];
    }
    routing.order.resize(data.size());
    std::vector<std::size_t> cursor = routing.shardFirst;
    for (std::size_t i = 0; i < data.size(); ++i)
        routing.order[cursor[map.ownerOf(data.states()[i])]++] = i;
    return routing;
}

std::vector<StateId>
collectHalo(const Dataset &data, const ShardRouting &routing,
            const ShardMap &map, std::size_t shard, std::size_t first,
            std::size_t count)
{
    SWIFTRL_ASSERT(first + count <= routing.order.size(),
                   "halo range out of bounds");
    std::vector<StateId> halo;
    for (std::size_t k = first; k < first + count; ++k) {
        const std::size_t idx = routing.order[k];
        SWIFTRL_ASSERT(map.ownerOf(data.states()[idx]) == shard,
                       "routed transition landed on the wrong shard");
        if (data.terminals()[idx] != 0)
            continue;
        const StateId next = data.nextStates()[idx];
        if (map.ownerOf(next) != shard)
            halo.push_back(next);
    }
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
    return halo;
}

std::vector<std::uint8_t>
packLocalizedChunk(const Dataset &data, const ShardRouting &routing,
                   const ShardMap &map, std::size_t shard,
                   std::size_t first, std::size_t count,
                   const std::vector<StateId> &halo, bool fp32,
                   std::int32_t scale)
{
    SWIFTRL_ASSERT(first + count <= routing.order.size(),
                   "pack range out of bounds");
    SWIFTRL_ASSERT(fp32 || scale > 0, "scale factor must be positive");
    const StateId base = map.firstState(shard);
    const StateId slice_rows = map.rowsPerShard();
    std::vector<std::uint8_t> out(count * sizeof(PackedTransition));
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t idx = routing.order[first + i];
        const StateId s = data.states()[idx];
        SWIFTRL_ASSERT(map.ownerOf(s) == shard,
                       "routed transition landed on the wrong shard");
        PackedTransition p;
        p.state = s - base;
        p.action = data.actions()[idx];
        const float reward = data.rewards()[idx];
        if (fp32) {
            p.rewardBits = std::bit_cast<std::int32_t>(reward);
        } else {
            // Same rounding as Dataset::packInt32.
            const double scaled = static_cast<double>(reward) *
                                  static_cast<double>(scale);
            const double rounded =
                scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
            p.rewardBits = static_cast<std::int32_t>(rounded);
        }
        const bool terminal = data.terminals()[idx] != 0;
        const StateId next = data.nextStates()[idx];
        StateId local_next = 0;
        if (!terminal) {
            if (map.ownerOf(next) == shard) {
                local_next = next - base;
            } else {
                const auto it = std::lower_bound(halo.begin(),
                                                 halo.end(), next);
                SWIFTRL_ASSERT(it != halo.end() && *it == next,
                               "remote next state ", next,
                               " missing from the halo");
                local_next = slice_rows +
                             static_cast<StateId>(it - halo.begin());
            }
        }
        // Terminal records keep local row 0: the update rules form
        // the next-state row pointer before branching on the flag,
        // so the id must stay inside the WRAM buffer even though its
        // value is never read.
        std::uint32_t bits = static_cast<std::uint32_t>(local_next);
        SWIFTRL_ASSERT((bits & PackedTransition::kTerminalBit) == 0,
                       "local row collides with the terminal flag bit");
        if (terminal)
            bits |= PackedTransition::kTerminalBit;
        p.nextStateBits = bits;
        std::memcpy(out.data() + i * sizeof(PackedTransition), &p,
                    sizeof(PackedTransition));
    }
    return out;
}

std::vector<std::uint8_t>
packSliceWire(const QTableIo &qio, const QTable &aggregated,
              const ShardMap &map, std::size_t shard)
{
    SWIFTRL_ASSERT(aggregated.numStates() == map.numStates(),
                   "aggregate and shard map disagree on shape");
    const ActionId na = aggregated.numActions();
    const StateId base = map.firstState(shard);
    const StateId owned = map.ownedRows(shard);
    // Padding rows (past ownedRows) stay zero on the wire forever.
    QTable slice(map.rowsPerShard(), na);
    const auto row_entries = static_cast<std::size_t>(na);
    std::copy_n(aggregated.values().begin() +
                    static_cast<std::size_t>(base) * row_entries,
                static_cast<std::size_t>(owned) * row_entries,
                slice.values().begin());
    return qio.packWire(slice);
}

std::vector<std::uint8_t>
packHaloWire(const QTableIo &qio, const QTable &aggregated,
             const std::vector<StateId> &halo, ActionId num_actions)
{
    if (halo.empty())
        return {};
    SWIFTRL_ASSERT(aggregated.numActions() == num_actions,
                   "aggregate and halo disagree on action count");
    QTable rows(static_cast<StateId>(halo.size()), num_actions);
    const auto row_entries = static_cast<std::size_t>(num_actions);
    for (std::size_t i = 0; i < halo.size(); ++i) {
        std::copy_n(aggregated.values().begin() +
                        static_cast<std::size_t>(halo[i]) * row_entries,
                    row_entries,
                    rows.values().begin() + i * row_entries);
    }
    return qio.packWire(rows);
}

std::vector<float>
decodeSliceWire(const std::vector<std::uint8_t> &bytes,
                std::size_t entries, bool fp32, std::int32_t scale)
{
    SWIFTRL_ASSERT(bytes.size() == entries * rlcore::kQWireBytesPerEntry,
                   "slice wire size mismatch");
    std::vector<float> out(entries);
    if (fp32) {
        std::memcpy(out.data(), bytes.data(), bytes.size());
    } else {
        // Same double-precision descale as QTableIo::gatherQTables,
        // so a 1-shard gather decodes bit-identically.
        SWIFTRL_ASSERT(scale > 0, "scale factor must be positive");
        const auto *fixed =
            reinterpret_cast<const std::int32_t *>(bytes.data());
        for (std::size_t i = 0; i < entries; ++i) {
            out[i] = static_cast<float>(static_cast<double>(fixed[i]) /
                                        static_cast<double>(scale));
        }
    }
    return out;
}

std::size_t
shardedMramDemandBound(StateId num_states, ActionId num_actions,
                       std::size_t num_shards, std::size_t transitions)
{
    SWIFTRL_ASSERT(num_states > 0 && num_actions > 0 && num_shards > 0,
                   "demand bound needs a real shape");
    const std::size_t ns = static_cast<std::size_t>(num_states);
    const std::size_t na = static_cast<std::size_t>(num_actions);
    const std::size_t rows = (ns + num_shards - 1) / num_shards;
    const std::size_t slice_bytes =
        rows * na * rlcore::kQWireBytesPerEntry;
    // The data region is laid out for the *whole* dataset: after
    // dropouts a lone surviving replica can inherit its shard's
    // entire routing share, and a globally fixed halo offset keeps
    // every core's layout identical.
    const std::size_t data_end =
        align8(slice_bytes) + transitions * sizeof(PackedTransition);
    // Worst-case halo: every transition names a distinct remote row.
    const std::size_t halo_bytes =
        std::min(transitions, ns) * na * rlcore::kQWireBytesPerEntry;
    return align8(data_end) + halo_bytes;
}

} // namespace swiftrl
