/**
 * @file
 * Host-side machinery for sharded Q-tables: replica-group placement,
 * transition routing, halo discovery, and the localized wire packing
 * that lets the unmodified update rules run against a Q-table slice.
 *
 * Design (docs/ARCHITECTURE.md section 13): the state space is cut
 * into contiguous ranges by rlcore::ShardMap; each shard's slice is
 * replicated over a contiguous group of cores; every transition is
 * routed to the shard owning its *current* state; and remote
 * next-state rows — the only cross-shard reads a tabular update
 * makes — are satisfied by a per-core read-only "halo" region the
 * host refreshes from the aggregate every sync round. DPUs cannot
 * talk to each other (the paper's constraint), so all of this is
 * batched host-mediated exchange on the existing CommandStream.
 *
 * Everything here is pure host-side computation over plain inputs,
 * so TrainerSession's checkpoint only needs the shard *count*: the
 * plan, routing, and halos are re-derived bit-identically from
 * (numStates, shards, numDpus, dataset, live set) on restore.
 */

#ifndef SWIFTRL_SWIFTRL_SHARDING_HH
#define SWIFTRL_SWIFTRL_SHARDING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "rlcore/shard_map.hh"
#include "swiftrl/qtable_io.hh"

namespace swiftrl {

/** Shard-to-core placement: contiguous replica groups. */
struct ShardPlan
{
    /** The state-range partition. */
    rlcore::ShardMap map;

    /** Owning shard of each core (size numDpus). */
    std::vector<std::size_t> shardOfCore;

    /** Replica cores of each shard, ascending core ids. */
    std::vector<std::vector<std::size_t>> coresOfShard;
};

/**
 * Empty when (num_states, num_shards, num_dpus) admits a valid plan,
 * else the human-readable reason. Embedder-facing callers (the C
 * ABI, the CLI) precheck with this; makeShardPlan is fatal on the
 * same conditions.
 */
std::string shardPlanInvalidReason(rlcore::StateId num_states,
                                   std::size_t num_shards,
                                   std::size_t num_dpus);

/**
 * Build the placement: cores are split into numShards contiguous
 * replica groups of near-equal size (remainder to the low shards,
 * mirroring partitionDataset's determinism).
 */
ShardPlan makeShardPlan(rlcore::StateId num_states,
                        std::size_t num_shards, std::size_t num_dpus);

/**
 * Dataset indices grouped by owning shard. `order` is a permutation
 * of [0, data.size()): shard s's transitions are
 * order[shardFirst[s] .. shardFirst[s] + shardCount[s]), in dataset
 * order within the shard (a stable counting sort, so the routing is
 * a pure function of the dataset and the map).
 */
struct ShardRouting
{
    std::vector<std::size_t> order;
    std::vector<std::size_t> shardFirst;
    std::vector<std::size_t> shardCount;
};

/** Route every transition to the shard owning its current state. */
ShardRouting routeByOwner(const rlcore::Dataset &data,
                          const rlcore::ShardMap &map);

/**
 * Sorted unique remote next states of routing.order[first ..
 * first + count) for a core of @p shard: the non-terminal next
 * states owned by *other* shards, i.e. the rows this core's halo
 * region must carry. Terminal next states need no row (the update
 * rules never read their value).
 */
std::vector<rlcore::StateId>
collectHalo(const rlcore::Dataset &data, const ShardRouting &routing,
            const rlcore::ShardMap &map, std::size_t shard,
            std::size_t first, std::size_t count);

/**
 * Wire-pack routing.order[first .. first + count) for a core of
 * @p shard with state ids localized to its WRAM layout
 * [slice rows | halo rows]: an owned state s becomes row
 * s - map.firstState(shard); a remote non-terminal next state
 * becomes rowsPerShard + its index in @p halo; a terminal next
 * state becomes row 0 (its value is never read, but the update
 * rules form the row pointer before branching on the flag, so the
 * row must stay in bounds). Reward encoding matches
 * Dataset::packFp32/packInt32 exactly.
 */
std::vector<std::uint8_t> packLocalizedChunk(
    const rlcore::Dataset &data, const ShardRouting &routing,
    const rlcore::ShardMap &map, std::size_t shard,
    std::size_t first, std::size_t count,
    const std::vector<rlcore::StateId> &halo, bool fp32,
    std::int32_t scale);

/**
 * Wire bytes of @p shard's slice of @p aggregated, padded with zero
 * rows to map.rowsPerShard(), in @p qio's format. With one shard
 * this is byte-identical to qio.packWire(aggregated).
 */
std::vector<std::uint8_t>
packSliceWire(const QTableIo &qio, const rlcore::QTable &aggregated,
              const rlcore::ShardMap &map, std::size_t shard);

/**
 * Wire bytes of the @p halo rows of @p aggregated, in halo order
 * (the localized ids packLocalizedChunk assigned). Empty for an
 * empty halo.
 */
std::vector<std::uint8_t>
packHaloWire(const QTableIo &qio, const rlcore::QTable &aggregated,
             const std::vector<rlcore::StateId> &halo,
             rlcore::ActionId num_actions);

/**
 * Decode one gathered slice back to floats — the same per-entry
 * expressions as QTableIo::gatherQTables, so a 1-shard run decodes
 * bit-identically to the unsharded gather.
 */
std::vector<float>
decodeSliceWire(const std::vector<std::uint8_t> &bytes,
                std::size_t entries, bool fp32, std::int32_t scale);

/**
 * Conservative per-core MRAM demand upper bound for a sharded run:
 * slice + a data region reserved for the whole dataset (after
 * dropouts one surviving replica can inherit its shard's entire
 * routing share) + the worst-case halo (every transition naming a
 * distinct remote row). Embedder-facing callers compare this
 * against PimConfig::mramBytesPerDpu before constructing a session.
 */
std::size_t shardedMramDemandBound(rlcore::StateId num_states,
                                   rlcore::ActionId num_actions,
                                   std::size_t num_shards,
                                   std::size_t transitions);

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_SHARDING_HH
