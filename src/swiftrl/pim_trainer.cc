#include "swiftrl/pim_trainer.hh"

#include <cstring>
#include <optional>

#include "common/logging.hh"
#include "rlcore/seeds.hh"
#include "swiftrl/partition.hh"
#include "swiftrl/pim_kernels.hh"
#include "telemetry/engine_collector.hh"

namespace swiftrl {

using pimsim::TimeBucket;
using rlcore::ActionId;
using rlcore::Dataset;
using rlcore::NumericFormat;
using rlcore::QTable;
using rlcore::StateId;

PimTrainer::PimTrainer(pimsim::PimSystem &system, PimTrainConfig config)
    : _system(system), _config(std::move(config)),
      _qio(_config.workload, _config.hyper)
{
    if (_config.tau <= 0)
        SWIFTRL_FATAL("synchronisation period tau must be positive");
    if (_config.hyper.episodes <= 0)
        SWIFTRL_FATAL("episode count must be positive");
    if (_config.blockTransitions == 0)
        SWIFTRL_FATAL("staging block must hold at least one transition");
    if (_config.tasklets < 1 || _config.tasklets > 24)
        SWIFTRL_FATAL("UPMEM DPUs support 1-24 tasklets, got ",
                      _config.tasklets);
    if (!(_config.epsilonDecay > 0.0f) || _config.epsilonDecay > 1.0f)
        SWIFTRL_FATAL("epsilon decay must be in (0, 1], got ",
                      _config.epsilonDecay);
    validate(_config.retry);
}

SessionConfig
PimTrainer::sessionConfig() const
{
    SessionConfig cfg;
    cfg.workload = _config.workload;
    cfg.hyper = _config.hyper;
    cfg.tau = _config.tau;
    cfg.blockTransitions = _config.blockTransitions;
    cfg.tasklets = _config.tasklets;
    cfg.retry = _config.retry;
    cfg.weightedAggregation = _config.weightedAggregation;
    cfg.epsilonDecay = _config.epsilonDecay;
    cfg.streaming = false;
    cfg.shards = _config.shards;
    cfg.batchExec = _config.batchExec;
    cfg.metrics = _config.metrics;
    return cfg;
}

std::size_t
PimTrainer::dataOffset(std::size_t q_bytes) const
{
    // Transitions start at the next 8-byte boundary past the Q region.
    return (q_bytes + 7) / 8 * 8;
}

void
PimTrainer::distribute(pimsim::CommandStream &stream,
                       const std::vector<const Dataset *> &sources,
                       const std::vector<std::size_t> &firsts,
                       const std::vector<std::size_t> &counts,
                       TimeBucket bucket, std::string_view label)
{
    const std::size_t n = _system.numDpus();
    SWIFTRL_ASSERT(sources.size() == n && firsts.size() == n &&
                       counts.size() == n,
                   "per-core distribution tables must cover all cores");

    std::vector<std::vector<std::uint8_t>> packed(n);
    std::vector<std::span<const std::uint8_t>> spans(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Dataset &src = *sources[i];
        packed[i] =
            _config.workload.format == NumericFormat::Fp32
                ? src.packFp32(firsts[i], counts[i])
                : src.packInt32(firsts[i], counts[i],
                                _qio.fixedScale());
        spans[i] = packed[i];
    }

    stream.pushChunks(_dataOffsetCache, spans, bucket, label);
}

PimTrainResult
PimTrainer::runImpl(const Dataset &data, StateId num_states,
                    ActionId num_actions,
                    const SessionCheckpoint *restore_from,
                    int pause_at_round, SessionCheckpoint *out_ck)
{
    PimTrainResult result;
    result.coresUsed = _system.numDpus();

    // The run is one begin/step*-per-round/finish sequence on a
    // TrainerSession, which owns the command stream, the Q-table wire
    // I/O, the LCG streams, and the fault-recovery plumbing. The
    // reported time breakdown is a view of the session's timeline
    // (continued past the checkpoint base on a resumed run).
    TrainerSession session(_system, sessionConfig());
    if (restore_from)
        session.restoreOffline(data, *restore_from);
    else
        session.beginOffline(data, num_states, num_actions);

    // Steps 2 + synchronisation: train in rounds of tau episodes;
    // each step() is one launch -> gather -> average -> reduce ->
    // broadcast round (Figure 4 (2) plus Sec. 4.2's tau-periodic
    // exchange), with fault recovery inside.
    while (session.episodesRemaining() > 0) {
        if (pause_at_round >= 0 &&
            session.commRounds() >= pause_at_round)
            break;
        session.step();
    }

    if (out_ck) {
        *out_ck = session.checkpoint();
        return result;
    }

    // Steps 3+4: final retrieval (Figure 4 (3)), then the result is
    // assembled from the session's whole-run accounting.
    session.finishRetrieval();
    result.finalQ = session.aggregated();
    result.roundDeltas = session.roundDeltas();
    result.commRounds = session.commRounds();
    result.time = session.currentTime();
    result.timeline = session.stream().timeline();
    result.faultsDetected = session.faultsDetected();
    result.coresLost = session.coresLost();
    if (_config.metrics) {
        auto &m = *_config.metrics;
        m.gauge("rl_epsilon")
            .set(static_cast<double>(session.epsilon()));
        m.counter("rl_faults_detected_total")
            .add(static_cast<std::uint64_t>(result.faultsDetected));
        m.gauge("rl_live_cores")
            .set(static_cast<double>(
                session.stream().liveDpuCount()));
        m.counter("rl_cores_lost_total")
            .add(static_cast<std::uint64_t>(result.coresLost));
        m.gauge("rl_recovery_seconds").set(result.time.recovery);
    }
    return result;
}

PimTrainResult
PimTrainer::train(const Dataset &data, StateId num_states,
                  ActionId num_actions)
{
    return runImpl(data, num_states, num_actions, nullptr, -1,
                   nullptr);
}

SessionCheckpoint
PimTrainer::trainUntilRound(const Dataset &data, StateId num_states,
                            ActionId num_actions, int rounds)
{
    if (rounds < 0)
        SWIFTRL_FATAL("pause round must be >= 0, got ", rounds);
    SessionCheckpoint ck;
    runImpl(data, num_states, num_actions, nullptr, rounds, &ck);
    return ck;
}

PimTrainResult
PimTrainer::resume(const Dataset &data, StateId num_states,
                   ActionId num_actions, const SessionCheckpoint &ck)
{
    return runImpl(data, num_states, num_actions, &ck, -1, nullptr);
}

PimTrainResult
PimTrainer::trainMultiAgent(const std::vector<Dataset> &agent_data,
                            StateId num_states, ActionId num_actions)
{
    const std::size_t n = _system.numDpus();
    if (agent_data.size() != n) {
        SWIFTRL_FATAL("multi-agent mode pins one agent per core: got ",
                      agent_data.size(), " agents for ", n, " cores");
    }
    if (_config.workload.algo != rlcore::Algorithm::QLearning) {
        SWIFTRL_FATAL("SwiftRL's multi-agent mode uses independent "
                      "Q-learners");
    }
    if (_config.shards > 0) {
        SWIFTRL_FATAL("multi-agent mode trains one whole table per "
                      "agent; sharding does not apply");
    }

    const std::size_t q_bytes =
        static_cast<std::size_t>(num_states) *
        static_cast<std::size_t>(num_actions) *
        rlcore::kQWireBytesPerEntry;
    _dataOffsetCache = dataOffset(q_bytes);

    PimTrainResult result;
    result.coresUsed = n;

    pimsim::CommandStream stream(_system);

    std::optional<telemetry::EngineCollector> collector;
    if (_config.metrics) {
        collector.emplace(*_config.metrics, _system);
        stream.setObserver(&*collector);
    }

    std::vector<const Dataset *> sources(n);
    std::vector<std::size_t> firsts(n, 0), counts(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (agent_data[i].empty())
            SWIFTRL_FATAL("agent ", i, " has an empty dataset");
        sources[i] = &agent_data[i];
        counts[i] = agent_data[i].size();
    }
    distribute(stream, sources, firsts, counts);
    _qio.initQTables(stream, num_states, num_actions);

    const std::size_t streams = n * _config.tasklets;
    std::vector<std::uint32_t> lcg_states(streams);
    for (std::size_t i = 0; i < streams; ++i)
        lcg_states[i] = rlcore::deriveLcgSeed(_config.hyper.seed, i);

    KernelParams params;
    params.workload = _config.workload;
    params.hyper = _config.hyper;
    params.numStates = num_states;
    params.numActions = num_actions;
    params.qOffset = _qio.qOffset();
    params.dataOffset = _dataOffsetCache;
    params.chunkCounts = &counts;
    params.lcgStates = &lcg_states;
    params.blockTransitions = _config.blockTransitions;
    params.tasklets = _config.tasklets;

    // Independent learners: all episodes in one launch, no
    // synchronisation rounds (the aggregation step "would be
    // unnecessary in this setting", Sec. 3.2.1).
    params.episodes = _config.hyper.episodes;
    const pimsim::KernelFn kernel =
        [&params](pimsim::KernelContext &ctx) {
            runTrainingKernel(ctx, params);
        };
    const pimsim::BatchKernelFn batch_kernel =
        [&params](pimsim::BatchKernelContext &batch) {
            runTrainingKernelBatch(batch, params);
        };
    // Batch interpretation applies whenever the kernel is
    // single-tasklet (multi-agent mode never tracks visits); results
    // are bit-identical to the scalar path either way.
    const bool use_batch = _config.batchExec && _config.tasklets == 1;
    runWithRecovery(
        stream, _config.retry, "kernel:episodes",
        [&] {
            return use_batch
                       ? stream.launchBatch(batch_kernel,
                                            _config.tasklets,
                                            TimeBucket::Kernel,
                                            "kernel:episodes")
                       : stream.launch(kernel, _config.tasklets,
                                       TimeBucket::Kernel,
                                       "kernel:episodes");
        },
        [](const pimsim::CommandError &error) {
            // Independent learners are pinned to their cores: there
            // is no dataset to redistribute, so a lost core means a
            // lost agent.
            SWIFTRL_FATAL("core ", error.dpus.front(),
                          " dropped out in multi-agent mode; "
                          "independent learners cannot be "
                          "redistributed");
        });

    result.perCore = _qio.gatherQTables(
        stream, num_states, num_actions, TimeBucket::PimToCpu,
        &_config.retry);
    // finalQ kept as the average for convenience (diagnostics only;
    // each agent deploys its own table).
    result.finalQ = QTable::average(result.perCore);
    result.time = breakdownFromTimeline(stream.timeline());
    result.timeline = stream.timeline();
    result.faultsDetected = countFaultEvents(result.timeline);
    if (_config.metrics) {
        auto &m = *_config.metrics;
        m.gauge("rl_epsilon").set(_config.hyper.epsilon);
        m.counter("rl_faults_detected_total")
            .add(static_cast<std::uint64_t>(result.faultsDetected));
        m.gauge("rl_live_cores")
            .set(static_cast<double>(stream.liveDpuCount()));
        m.counter("rl_cores_lost_total")
            .add(static_cast<std::uint64_t>(result.coresLost));
        m.gauge("rl_recovery_seconds").set(result.time.recovery);
    }
    return result;
}

} // namespace swiftrl
