#include "swiftrl/pim_trainer.hh"

#include <cstring>
#include <optional>

#include "common/logging.hh"
#include "rlcore/seeds.hh"
#include "swiftrl/partition.hh"
#include "swiftrl/pim_kernels.hh"
#include "telemetry/engine_collector.hh"

namespace swiftrl {

using pimsim::TimeBucket;
using rlcore::ActionId;
using rlcore::Dataset;
using rlcore::NumericFormat;
using rlcore::QTable;
using rlcore::StateId;

PimTrainer::PimTrainer(pimsim::PimSystem &system, PimTrainConfig config)
    : _system(system), _config(std::move(config)),
      _qio(_config.workload, _config.hyper)
{
    if (_config.tau <= 0)
        SWIFTRL_FATAL("synchronisation period tau must be positive");
    if (_config.hyper.episodes <= 0)
        SWIFTRL_FATAL("episode count must be positive");
    if (_config.blockTransitions == 0)
        SWIFTRL_FATAL("staging block must hold at least one transition");
    if (_config.tasklets < 1 || _config.tasklets > 24)
        SWIFTRL_FATAL("UPMEM DPUs support 1-24 tasklets, got ",
                      _config.tasklets);
    validate(_config.retry);
}

std::size_t
PimTrainer::dataOffset(std::size_t q_bytes) const
{
    // Transitions start at the next 8-byte boundary past the Q region.
    return (q_bytes + 7) / 8 * 8;
}

void
PimTrainer::distribute(pimsim::CommandStream &stream,
                       const std::vector<const Dataset *> &sources,
                       const std::vector<std::size_t> &firsts,
                       const std::vector<std::size_t> &counts,
                       TimeBucket bucket, std::string_view label)
{
    const std::size_t n = _system.numDpus();
    SWIFTRL_ASSERT(sources.size() == n && firsts.size() == n &&
                       counts.size() == n,
                   "per-core distribution tables must cover all cores");

    std::vector<std::vector<std::uint8_t>> packed(n);
    std::vector<std::span<const std::uint8_t>> spans(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Dataset &src = *sources[i];
        packed[i] =
            _config.workload.format == NumericFormat::Fp32
                ? src.packFp32(firsts[i], counts[i])
                : src.packInt32(firsts[i], counts[i],
                                _qio.fixedScale());
        spans[i] = packed[i];
    }

    stream.pushChunks(_dataOffsetCache, spans, bucket, label);
}

QTable
PimTrainer::weightedAverage(
    const std::vector<QTable> &tables,
    const std::vector<std::vector<std::uint8_t>> &raw_counts,
    const QTable &previous) const
{
    SWIFTRL_ASSERT(tables.size() == raw_counts.size(),
                   "one count table per Q-table required");
    QTable out(previous.numStates(), previous.numActions());
    const std::size_t entries = out.entryCount();
    std::vector<double> numerator(entries, 0.0);
    std::vector<double> denominator(entries, 0.0);

    for (std::size_t core = 0; core < tables.size(); ++core) {
        SWIFTRL_ASSERT(raw_counts[core].size() == entries * 4,
                       "count table size mismatch");
        const auto *counts = reinterpret_cast<const std::uint32_t *>(
            raw_counts[core].data());
        for (std::size_t i = 0; i < entries; ++i) {
            const double w = counts[i];
            numerator[i] +=
                w * static_cast<double>(tables[core].values()[i]);
            denominator[i] += w;
        }
    }
    for (std::size_t i = 0; i < entries; ++i) {
        out.values()[i] =
            denominator[i] > 0.0
                ? static_cast<float>(numerator[i] / denominator[i])
                : previous.values()[i];
    }
    return out;
}

PimTrainResult
PimTrainer::train(const Dataset &data, StateId num_states,
                  ActionId num_actions)
{
    SWIFTRL_ASSERT(!data.empty(), "training on an empty dataset");
    const std::size_t n = _system.numDpus();
    const std::size_t entries =
        static_cast<std::size_t>(num_states) *
        static_cast<std::size_t>(num_actions);
    const std::size_t q_bytes = entries * 4;
    const std::size_t visits_offset = dataOffset(q_bytes);
    _dataOffsetCache =
        _config.weightedAggregation
            ? dataOffset(visits_offset + q_bytes)
            : visits_offset;

    PimTrainResult result;
    result.coresUsed = n;

    // The run is one explicit command sequence on a dedicated stream;
    // the reported time breakdown is a view of its timeline.
    pimsim::CommandStream stream(_system);

    // Telemetry (off unless a registry is configured): per-launch
    // engine metrics via the stream observer, rl_* metrics below.
    std::optional<telemetry::EngineCollector> collector;
    if (_config.metrics) {
        collector.emplace(*_config.metrics, _system);
        stream.setObserver(&*collector);
    }

    // Step 1: partition and distribute the dataset (Figure 4 (1)).
    const auto chunks = partitionDataset(data.size(), n);
    std::vector<const Dataset *> sources(n, &data);
    std::vector<std::size_t> firsts(n), counts(n);
    for (std::size_t i = 0; i < n; ++i) {
        firsts[i] = chunks[i].first;
        counts[i] = chunks[i].count;
    }
    distribute(stream, sources, firsts, counts);
    _qio.initQTables(stream, num_states, num_actions);

    // Persistent LCG streams, one per (core, tasklet).
    const std::size_t streams = n * _config.tasklets;
    std::vector<std::uint32_t> lcg_states(streams);
    for (std::size_t i = 0; i < streams; ++i)
        lcg_states[i] = rlcore::deriveLcgSeed(_config.hyper.seed, i);

    KernelParams params;
    params.workload = _config.workload;
    params.hyper = _config.hyper;
    params.numStates = num_states;
    params.numActions = num_actions;
    params.qOffset = _qio.qOffset();
    params.dataOffset = _dataOffsetCache;
    params.chunkCounts = &counts;
    params.lcgStates = &lcg_states;
    params.blockTransitions = _config.blockTransitions;
    params.tasklets = _config.tasklets;
    params.trackVisits = _config.weightedAggregation;
    params.visitsOffset = visits_offset;

    // Steps 2 + synchronisation: train in rounds of tau episodes;
    // after each round the cores exchange Q-values through the host
    // (gather -> average -> broadcast).
    QTable aggregated(num_states, num_actions);

    // Permanent dropout recovery: re-partition the *whole* dataset
    // over the survivors (dead cores get empty chunks) and restart
    // the interrupted round from the last aggregate. The re-broadcast
    // is functionally idempotent — every survivor already holds the
    // aggregate, because the faulted launch committed nothing — but
    // the real host cannot know that, so both transfers are paid for
    // on the Recovery track.
    const auto redistribute = [&](const pimsim::CommandError &) {
        const std::size_t live = stream.liveDpuCount();
        if (live == 0)
            SWIFTRL_FATAL("all ", n, " cores lost to permanent "
                          "dropouts; nothing left to redistribute to");
        const auto live_chunks = partitionDataset(data.size(), live);
        std::size_t next = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (stream.isDead(i)) {
                firsts[i] = 0;
                counts[i] = 0;
                continue;
            }
            firsts[i] = live_chunks[next].first;
            counts[i] = live_chunks[next].count;
            ++next;
        }
        distribute(stream, sources, firsts, counts,
                   TimeBucket::Recovery, "scatter:redistribute");
        _qio.broadcastQTable(stream, aggregated, TimeBucket::Recovery,
                             "broadcast:recover");
    };

    // One kernel wrapper for every round and retry: the KernelFn
    // (a std::function) allocates, so it is built once and reused
    // rather than reconstructed per launch. It reads the episode
    // count through `params` at call time.
    const pimsim::KernelFn kernel =
        [&params](pimsim::KernelContext &ctx) {
            runTrainingKernel(ctx, params);
        };

    int remaining = _config.hyper.episodes;
    while (remaining > 0) {
        params.episodes = std::min(_config.tau, remaining);
        remaining -= params.episodes;

        runWithRecovery(
            stream, _config.retry, "kernel:round",
            [&] {
                return stream.launch(kernel, _config.tasklets,
                                     TimeBucket::Kernel,
                                     "kernel:round");
            },
            redistribute);

        auto tables = _qio.gatherQTables(
            stream, num_states, num_actions, TimeBucket::InterCore,
            &_config.retry);
        const QTable previous = aggregated;
        if (_config.weightedAggregation) {
            // Extra gather of the per-core visit counts, then a
            // count-weighted mean with fallback to the previous
            // aggregate for entries no core visited this round.
            // Dropped cores come back zero-filled with zero counts,
            // so they carry no weight.
            std::vector<std::vector<std::uint8_t>> raw_counts;
            runWithRecovery(
                stream, _config.retry, "gather:visits",
                [&] {
                    return stream.gather(visits_offset, entries * 4,
                                         raw_counts,
                                         TimeBucket::InterCore,
                                         "gather:visits");
                },
                [](const pimsim::CommandError &) {
                    SWIFTRL_PANIC("gathers cannot drop cores");
                });
            aggregated =
                weightedAverage(tables, raw_counts, previous);
        } else {
            // Plain mean over the *surviving* cores only; a dropped
            // core's zero-filled placeholder must not dilute it.
            std::vector<QTable> live_tables;
            live_tables.reserve(stream.liveDpuCount());
            for (std::size_t i = 0; i < tables.size(); ++i) {
                if (!stream.isDead(i))
                    live_tables.push_back(std::move(tables[i]));
            }
            aggregated = QTable::average(live_tables);
        }
        result.roundDeltas.push_back(
            QTable::maxAbsDifference(aggregated, previous));
        // Host-side reduction cost of the averaging itself.
        stream.hostReduce(
            _system.config().transferModel.hostReduceSecPerEntry *
                static_cast<double>(entries) *
                static_cast<double>(stream.liveDpuCount()),
            "reduce:average");
        _qio.broadcastQTable(stream, aggregated,
                             TimeBucket::InterCore);
        ++result.commRounds;
        SWIFTRL_DEBUG("round ", result.commRounds, ": max |dQ| ",
                      result.roundDeltas.back(), ", live cores ",
                      stream.liveDpuCount(), ", modelled t ",
                      stream.now(), " s");
        if (_config.metrics) {
            _config.metrics->counter("rl_comm_rounds_total").add();
            _config.metrics->series("rl_round_max_abs_dq")
                .append(result.roundDeltas.back());
            stream.recordCounter(
                "max-abs-dq",
                static_cast<double>(result.roundDeltas.back()));
        }
    }

    // Steps 3+4: final retrieval. After the last synchronisation
    // every core holds the aggregated table, so the deployed policy
    // is that aggregate; the gather is still paid for (Figure 4 (3)) —
    // timing-only, as the host provably holds the payload already.
    const double convert =
        _qio.conversionSeconds(stream, entries, /*to_float=*/true);
    if (convert > 0.0)
        stream.onCoreCompute(convert, TimeBucket::PimToCpu,
                             "convert:descale");
    stream.gatherTimed(_qio.qOffset(), entries * 4,
                       TimeBucket::PimToCpu, "gather:final");
    result.finalQ = std::move(aggregated);
    result.time = breakdownFromTimeline(stream.timeline());
    result.timeline = stream.timeline();
    result.faultsDetected = countFaultEvents(result.timeline);
    result.coresLost = n - stream.liveDpuCount();
    if (_config.metrics) {
        auto &m = *_config.metrics;
        m.gauge("rl_epsilon").set(_config.hyper.epsilon);
        m.counter("rl_faults_detected_total")
            .add(static_cast<std::uint64_t>(result.faultsDetected));
        m.gauge("rl_live_cores")
            .set(static_cast<double>(stream.liveDpuCount()));
        m.gauge("rl_recovery_seconds").set(result.time.recovery);
    }
    return result;
}

PimTrainResult
PimTrainer::trainMultiAgent(const std::vector<Dataset> &agent_data,
                            StateId num_states, ActionId num_actions)
{
    const std::size_t n = _system.numDpus();
    if (agent_data.size() != n) {
        SWIFTRL_FATAL("multi-agent mode pins one agent per core: got ",
                      agent_data.size(), " agents for ", n, " cores");
    }
    if (_config.workload.algo != rlcore::Algorithm::QLearning) {
        SWIFTRL_FATAL("SwiftRL's multi-agent mode uses independent "
                      "Q-learners");
    }

    const std::size_t q_bytes =
        static_cast<std::size_t>(num_states) *
        static_cast<std::size_t>(num_actions) * 4;
    _dataOffsetCache = dataOffset(q_bytes);

    PimTrainResult result;
    result.coresUsed = n;

    pimsim::CommandStream stream(_system);

    std::optional<telemetry::EngineCollector> collector;
    if (_config.metrics) {
        collector.emplace(*_config.metrics, _system);
        stream.setObserver(&*collector);
    }

    std::vector<const Dataset *> sources(n);
    std::vector<std::size_t> firsts(n, 0), counts(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (agent_data[i].empty())
            SWIFTRL_FATAL("agent ", i, " has an empty dataset");
        sources[i] = &agent_data[i];
        counts[i] = agent_data[i].size();
    }
    distribute(stream, sources, firsts, counts);
    _qio.initQTables(stream, num_states, num_actions);

    const std::size_t streams = n * _config.tasklets;
    std::vector<std::uint32_t> lcg_states(streams);
    for (std::size_t i = 0; i < streams; ++i)
        lcg_states[i] = rlcore::deriveLcgSeed(_config.hyper.seed, i);

    KernelParams params;
    params.workload = _config.workload;
    params.hyper = _config.hyper;
    params.numStates = num_states;
    params.numActions = num_actions;
    params.qOffset = _qio.qOffset();
    params.dataOffset = _dataOffsetCache;
    params.chunkCounts = &counts;
    params.lcgStates = &lcg_states;
    params.blockTransitions = _config.blockTransitions;
    params.tasklets = _config.tasklets;

    // Independent learners: all episodes in one launch, no
    // synchronisation rounds (the aggregation step "would be
    // unnecessary in this setting", Sec. 3.2.1).
    params.episodes = _config.hyper.episodes;
    const pimsim::KernelFn kernel =
        [&params](pimsim::KernelContext &ctx) {
            runTrainingKernel(ctx, params);
        };
    runWithRecovery(
        stream, _config.retry, "kernel:episodes",
        [&] {
            return stream.launch(kernel, _config.tasklets,
                                 TimeBucket::Kernel,
                                 "kernel:episodes");
        },
        [](const pimsim::CommandError &error) {
            // Independent learners are pinned to their cores: there
            // is no dataset to redistribute, so a lost core means a
            // lost agent.
            SWIFTRL_FATAL("core ", error.dpus.front(),
                          " dropped out in multi-agent mode; "
                          "independent learners cannot be "
                          "redistributed");
        });

    result.perCore = _qio.gatherQTables(
        stream, num_states, num_actions, TimeBucket::PimToCpu,
        &_config.retry);
    // finalQ kept as the average for convenience (diagnostics only;
    // each agent deploys its own table).
    result.finalQ = QTable::average(result.perCore);
    result.time = breakdownFromTimeline(stream.timeline());
    result.timeline = stream.timeline();
    result.faultsDetected = countFaultEvents(result.timeline);
    if (_config.metrics) {
        auto &m = *_config.metrics;
        m.gauge("rl_epsilon").set(_config.hyper.epsilon);
        m.counter("rl_faults_detected_total")
            .add(static_cast<std::uint64_t>(result.faultsDetected));
        m.gauge("rl_live_cores")
            .set(static_cast<double>(stream.liveDpuCount()));
        m.gauge("rl_recovery_seconds").set(result.time.recovery);
    }
    return result;
}

} // namespace swiftrl
