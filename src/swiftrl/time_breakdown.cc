#include "swiftrl/time_breakdown.hh"

namespace swiftrl {

TimeBreakdown
breakdownFromTimeline(const pimsim::Timeline &timeline)
{
    return breakdownFromTimeline(timeline, TimeBreakdown{});
}

TimeBreakdown
breakdownFromTimeline(const pimsim::Timeline &timeline,
                      const TimeBreakdown &base)
{
    using pimsim::TimeBucket;
    TimeBreakdown time = base;
    for (const auto &event : timeline.events()) {
        const double d = event.duration();
        switch (event.bucket) {
        case TimeBucket::Kernel: time.kernel += d; break;
        case TimeBucket::CpuToPim: time.cpuToPim += d; break;
        case TimeBucket::PimToCpu: time.pimToCpu += d; break;
        case TimeBucket::InterCore: time.interCore += d; break;
        case TimeBucket::HostCollect: time.hostCollect += d; break;
        case TimeBucket::Recovery: time.recovery += d; break;
        }
    }
    return time;
}

} // namespace swiftrl
