/**
 * @file
 * The SwiftRL training orchestrator: the host-side program that
 * executes Figure 4's four steps on the (simulated) PIM machine —
 * (1) distribute dataset chunks to the cores' DRAM banks,
 * (2) run the training kernel on every core in parallel,
 * (3) retrieve partial Q-tables, and
 * (4) aggregate them on the host —
 * with the tau-periodic inter-core synchronisation of Sec. 4.2 and the
 * multi-agent independent-learner mode of Sec. 3.2.1.
 *
 * Each run is issued as an explicit command sequence on a
 * pimsim::CommandStream: every scatter / launch / gather / reduce /
 * broadcast becomes a command with a `{start, end}` interval on the
 * stream's modelled-time timeline. The reported TimeBreakdown is
 * *derived from that timeline* (see breakdownFromTimeline), and the
 * timeline itself ships in the result for Chrome-trace export.
 */

#ifndef SWIFTRL_SWIFTRL_PIM_TRAINER_HH
#define SWIFTRL_SWIFTRL_PIM_TRAINER_HH

#include <vector>

#include "pimsim/command_stream.hh"
#include "pimsim/pim_system.hh"
#include "pimsim/timeline.hh"
#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "swiftrl/qtable_io.hh"
#include "swiftrl/retry_policy.hh"
#include "swiftrl/session.hh"
#include "swiftrl/time_breakdown.hh"
#include "swiftrl/workload.hh"

namespace swiftrl {

namespace telemetry {
class MetricRegistry;
}

/** Configuration for one PIM training run. */
struct PimTrainConfig
{
    /** Which of the 12 workload variants to run. */
    Workload workload;

    /** Hyper-parameters; hyper.episodes is the total episode count. */
    rlcore::Hyper hyper;

    /**
     * Synchronisation period tau: episodes between inter-core
     * Q-table averaging rounds (paper default 50). Comm_rounds =
     * episodes / tau.
     */
    int tau = 50;

    /** Transitions per SEQ/STR staging block. */
    std::size_t blockTransitions = 128;

    /**
     * Hardware threads per PIM core (paper: 1, its stated future
     * work beyond core-level parallelism). Each tasklet trains its
     * own sub-chunk against the core's shared Q-table; the pipeline
     * speeds up by min(tasklets, pipelineInterval).
     */
    unsigned tasklets = 1;

    /**
     * Run eligible kernel launches through the lockstep batch
     * interpreter (pimsim::BatchKernelContext +
     * runTrainingKernelBatch) instead of interpreting the kernel once
     * per core. Eligible means tasklets == 1 and no visit tracking
     * (weightedAggregation); ineligible launches silently use the
     * scalar path. Modelled results — Q-tables, cycles, op counts,
     * DMA bytes — are bit-identical either way (a tested invariant);
     * only host wall-clock changes. Defaults to the
     * SWIFTRL_BATCH_EXEC build option.
     */
    bool batchExec =
#ifdef SWIFTRL_BATCH_EXEC
        true;
#else
        false;
#endif

    /**
     * Fault recovery under an active PimConfig::faultPlan: bounded
     * relaunch with modelled backoff for transient/corruption faults,
     * chunk redistribution over the survivors for permanent dropouts.
     * Unused (and cost-free) when the fault plan is inert.
     */
    RetryPolicy retry;

    /**
     * Extension beyond the paper: weight each core's Q-entries by
     * its per-round visit counts during the synchronisation average,
     * instead of the paper's plain mean. Entries no core visited
     * keep their previous aggregated value. Plain averaging lets the
     * Q = 0 of unvisited entries dilute learned values — fatal in
     * negative-reward environments when chunks under-cover the state
     * space (see tests/test_pim_trainer.cc's coverage
     * characterisation); weighting fixes exactly that at the cost of
     * one extra per-round gather of the count table.
     */
    bool weightedAggregation = false;

    /**
     * Per-round epsilon decay: the working epsilon is multiplied by
     * this factor after every synchronisation round. The default 1.0
     * keeps epsilon constant bit-exactly, reproducing the paper's
     * fixed-epsilon training; smaller values anneal exploration as
     * the aggregate converges. The schedule position survives
     * checkpoint/restore.
     */
    float epsilonDecay = 1.0f;

    /**
     * Q-table shards (0 = unsharded, the paper's whole-table
     * replication). See SessionConfig::shards for the full contract;
     * offline single-table training only — trainMultiAgent refuses
     * it. shards == 1 stays bit-identical to unsharded training.
     */
    std::size_t shards = 0;

    /**
     * Telemetry destination (null = off, the default). When set, the
     * trainer attaches an EngineCollector to its command stream
     * (per-launch instruction mix, DMA bytes, straggler histograms)
     * and emits the rl_* training metrics documented in
     * docs/OBSERVABILITY.md. Purely observational: results and
     * modelled times are bit-identical with and without a registry.
     */
    telemetry::MetricRegistry *metrics = nullptr;
};

/** Output of a PIM training run. */
struct PimTrainResult
{
    /** Aggregated final Q-table (average of all local tables). */
    rlcore::QTable finalQ;

    /** Per-core final tables; filled only in multi-agent mode. */
    std::vector<rlcore::QTable> perCore;

    /**
     * Modelled execution time, split per Figures 5/6. Derived from
     * `timeline` via breakdownFromTimeline — the two always agree.
     */
    TimeBreakdown time;

    /**
     * The run's full command timeline: one event per scatter /
     * launch / gather / host-reduce / broadcast command, in modelled
     * time. Export with Timeline::writeChromeTrace for
     * chrome://tracing.
     */
    pimsim::Timeline timeline;

    /** Inter-core communication rounds executed. */
    int commRounds = 0;

    /**
     * Convergence trace: max |change| of the aggregated Q-table at
     * each synchronisation round. Empty in multi-agent mode.
     */
    std::vector<float> roundDeltas;

    /** PIM cores that participated. */
    std::size_t coresUsed = 0;

    /** Faulted command attempts absorbed by the retry policy. */
    int faultsDetected = 0;

    /** Cores lost to permanent dropouts (work redistributed). */
    std::size_t coresLost = 0;

    PimTrainResult() : finalQ(1, 1) {}
};

/**
 * Drives training of one workload on a PimSystem. The trainer owns no
 * PIM state beyond a run; the same system can be reused (resetStats
 * between runs for clean accounting).
 */
class PimTrainer
{
  public:
    /** @param system machine to run on; must outlive the trainer. */
    PimTrainer(pimsim::PimSystem &system, PimTrainConfig config);

    /**
     * Standard SwiftRL training: partition @p data across all cores,
     * train with tau-periodic averaging, aggregate on the host.
     */
    PimTrainResult train(const rlcore::Dataset &data,
                         rlcore::StateId num_states,
                         rlcore::ActionId num_actions);

    /**
     * Train until @p rounds synchronisation rounds have completed,
     * then checkpoint and stop (no final retrieval). The returned
     * checkpoint — persistable with saveCheckpoint() — restores in a
     * fresh process via resume(), which continues bit-identically to
     * an uninterrupted train(). A @p rounds past the end of the run
     * checkpoints at the final round boundary.
     */
    SessionCheckpoint trainUntilRound(const rlcore::Dataset &data,
                                      rlcore::StateId num_states,
                                      rlcore::ActionId num_actions,
                                      int rounds);

    /**
     * Continue a checkpointed run to completion. @p data must be the
     * same dataset the checkpointed run trained on (the transition
     * region is rebuilt from it), and the trainer configuration must
     * match the checkpoint's identity block.
     */
    PimTrainResult resume(const rlcore::Dataset &data,
                          rlcore::StateId num_states,
                          rlcore::ActionId num_actions,
                          const SessionCheckpoint &ck);

    /**
     * Multi-agent Q-learning (Sec. 3.2.1): one independent learner per
     * core, each with its own dataset; no synchronisation and no final
     * aggregation. @p agent_data must contain exactly one non-empty
     * dataset per core.
     */
    PimTrainResult trainMultiAgent(
        const std::vector<rlcore::Dataset> &agent_data,
        rlcore::StateId num_states, rlcore::ActionId num_actions);

    /** Configuration in use. */
    const PimTrainConfig &config() const { return _config; }

  private:
    /** Pack + enqueue the per-core chunk scatter. */
    void distribute(pimsim::CommandStream &stream,
                    const std::vector<const rlcore::Dataset *> &sources,
                    const std::vector<std::size_t> &firsts,
                    const std::vector<std::size_t> &counts,
                    pimsim::TimeBucket bucket =
                        pimsim::TimeBucket::CpuToPim,
                    std::string_view label = "scatter:dataset");

    /** The session configuration this trainer's runs use. */
    SessionConfig sessionConfig() const;

    /**
     * One code path for train / trainUntilRound / resume: drive a
     * TrainerSession from either a fresh begin or @p restore_from,
     * stopping at @p pause_at_round (absolute round count, -1 =
     * never) into @p out_ck, else finishing the run into the result.
     */
    PimTrainResult runImpl(const rlcore::Dataset &data,
                           rlcore::StateId num_states,
                           rlcore::ActionId num_actions,
                           const SessionCheckpoint *restore_from,
                           int pause_at_round,
                           SessionCheckpoint *out_ck);

    std::size_t dataOffset(std::size_t q_bytes) const;

    pimsim::PimSystem &_system;
    PimTrainConfig _config;

    /**
     * Q-table transfer helper shared with the streaming trainer:
     * packing, broadcast/gather commands, and the on-core
     * fixed<->float conversion costs all come from here.
     */
    QTableIo _qio;

    /** MRAM byte offset of the transition region for the active run. */
    std::size_t _dataOffsetCache = 0;
};

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_PIM_TRAINER_HH
