/**
 * @file
 * The PIM-side training kernels: the code that would be compiled for
 * the DPUs on real hardware. One launch trains a batch of whole
 * episodes over the core's chunk of experiences.
 *
 * Kernel structure (per core, per launch):
 *   1. DMA the Q-table from the MRAM bank into WRAM.
 *   2. Restore the persistent LCG state.
 *   3. For each episode: walk the chunk in the workload's sampling
 *      order; for each experience, fetch it (block-cached DMA for
 *      SEQ/STR, single-record DMA for RAN) and apply the update rule
 *      through the cycle-charged ops provider.
 *   4. DMA the Q-table back to MRAM, persist the LCG state.
 *
 * Functional results are bit-identical to rlcore::trainCpuReference by
 * construction — both instantiate the same templates from
 * rlcore/update_rules.hh.
 */

#ifndef SWIFTRL_SWIFTRL_PIM_KERNELS_HH
#define SWIFTRL_SWIFTRL_PIM_KERNELS_HH

#include <cstdint>
#include <vector>

#include "pimsim/batch_context.hh"
#include "pimsim/kernel_context.hh"
#include "rlcore/trainers.hh"
#include "rlcore/types.hh"
#include "swiftrl/workload.hh"

namespace swiftrl {

/** MRAM layout and launch parameters shared by every core. */
struct KernelParams
{
    /** Workload variant to run. */
    Workload workload;

    /** Hyper-parameters (alpha, gamma, epsilon, stride, scale). */
    rlcore::Hyper hyper;

    /** Q-table shape. */
    rlcore::StateId numStates = 0;
    rlcore::ActionId numActions = 0;

    /** MRAM byte offset of the Q-table region. */
    std::size_t qOffset = 0;

    /** MRAM byte offset of the packed transition chunk. */
    std::size_t dataOffset = 0;

    /**
     * When true, the kernel counts per-(s,a) update visits in WRAM
     * and writes them to MRAM at visitsOffset after training —
     * enabling the host's visit-weighted aggregation (an extension
     * beyond the paper; see PimTrainConfig::weightedAggregation).
     */
    bool trackVisits = false;

    /** MRAM byte offset of the visit-count region. */
    std::size_t visitsOffset = 0;

    /** Whole episodes to run in this launch. */
    int episodes = 0;

    /** Per-core chunk lengths (in transitions). */
    const std::vector<std::size_t> *chunkCounts = nullptr;

    /**
     * Persistent LCG states, one stream per (core, tasklet):
     * lcgStates[core * tasklets + tasklet]. Read at launch entry,
     * written back at exit.
     */
    std::vector<std::uint32_t> *lcgStates = nullptr;

    /**
     * Hardware threads per core (paper: 1; its future work). With
     * t > 1 the chunk is split into t near-equal sub-chunks, each
     * walked by its own tasklet in the workload's sampling order,
     * updating the core's *shared* WRAM Q-table with round-robin
     * interleaving (the pipeline's fine-grained multithreading).
     */
    unsigned tasklets = 1;

    /** Transitions per SEQ/STR staging block (DMA limit / 16). */
    std::size_t blockTransitions = 128;

    /**
     * Sharded mode: rows of the Q-table slice each core owns (the
     * shard map's padded rowsPerShard). 0 = unsharded, the core
     * holds the whole table. In sharded mode the host pre-localises
     * every record's state ids — an owned state becomes its slice
     * row, a remote next state becomes sliceRows + its halo index —
     * so the update rules run unchanged against the WRAM buffer
     * [slice rows | halo rows]. Incompatible with trackVisits.
     */
    std::size_t sliceRows = 0;

    /** MRAM byte offset of the read-only halo region (sharded). */
    std::size_t haloOffset = 0;

    /** Per-core halo row counts (sharded mode only). */
    const std::vector<std::size_t> *haloRows = nullptr;
};

/**
 * Kernel entry point, executed once per core by PimSystem::launch.
 * Dispatches on the workload's algorithm and numeric format.
 *
 * Templated on the context type so the charge-ledger parity test can
 * drive the same kernel through a write-through
 * pimsim::ReferenceKernelContext; explicitly instantiated in
 * pim_kernels.cc for both context types — production callers just
 * pass a pimsim::KernelContext.
 */
template <typename Ctx>
void runTrainingKernel(Ctx &ctx, const KernelParams &params);

/**
 * Batch-interpreted kernel entry point: trains every lane of a cohort
 * in one lockstep pass instead of interpreting the kernel once per
 * core (see docs/PERFORMANCE.md, "Batch interpretation").
 *
 * Functionally and in every modelled quantity — per-core cycles, op
 * counts, DMA bytes, Q-tables, LCG streams — the result is
 * bit-identical to running runTrainingKernel over the same cores with
 * the same KernelParams: the lanes execute the real update-rule
 * templates record by record, while op-class charges are retired as
 * per-lane *shape tallies* multiplied by probe-calibrated per-shape
 * charge profiles (exact, because every update's charge sequence is
 * fully determined by its control-flow shape). The invariant is
 * enforced by tests/test_batch_context.cc across all kernel variants.
 *
 * Preconditions (callers fall back to the scalar path otherwise):
 * params.tasklets == 1 and !params.trackVisits. Sharded layouts are
 * supported.
 */
void runTrainingKernelBatch(pimsim::BatchKernelContext &batch,
                            const KernelParams &params);

/** Bytes of one packed transition record. */
inline constexpr std::size_t kTransitionBytes = 16;

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_PIM_KERNELS_HH
