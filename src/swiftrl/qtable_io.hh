/**
 * @file
 * Q-table wire I/O shared by the offline (PimTrainer) and streaming
 * (StreamingTrainer) trainers: initialising, gathering, and
 * broadcasting Q-tables over a command stream, including the on-core
 * fixed-point<->FP32 conversion the paper describes flanking every
 * transfer ("convert the values back from INT32 to FP32 ... before
 * the PIM cores transfer", Sec. 4.2).
 *
 * Extracting this from PimTrainer keeps the two trainers' transfers
 * byte- and cycle-identical by construction: same packing, same
 * conversion cost formula, same event labels on the timeline.
 */

#ifndef SWIFTRL_SWIFTRL_QTABLE_IO_HH
#define SWIFTRL_SWIFTRL_QTABLE_IO_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "pimsim/command_stream.hh"
#include "rlcore/qtable.hh"
#include "rlcore/types.hh"
#include "swiftrl/retry_policy.hh"
#include "swiftrl/workload.hh"

namespace swiftrl {

/**
 * Stateless helper binding a workload's numeric format (and its
 * fixed-point scale) to the Q-table transfer commands. The Q region
 * always starts at MRAM offset 0.
 */
class QTableIo
{
  public:
    /**
     * @param workload decides the wire format (FP32 bytes vs raw
     *        fixed point with an on-core conversion step).
     * @param hyper supplies the fixed-point scale parameters.
     */
    QTableIo(const Workload &workload, const rlcore::Hyper &hyper)
        : _workload(workload), _hyper(hyper)
    {
    }

    /** MRAM byte offset of the Q-table region (always 0). */
    std::size_t qOffset() const { return 0; }

    /**
     * Fixed-point scale for the active format: hyper.scale for INT32,
     * 1 << hyper.int8Shift for the INT8 optimisation.
     */
    std::int32_t fixedScale() const;

    /**
     * Modelled on-core cost of converting a Q-table between raw
     * fixed point and FP32 wire format (the descale-before-transfer /
     * requantise-after-broadcast step); zero for FP32 workloads.
     */
    double conversionSeconds(const pimsim::CommandStream &stream,
                             std::size_t q_entries,
                             bool to_float) const;

    /**
     * Broadcast the all-zeros initial Q-table to every core
     * (Algorithm 1's initialisation; both formats share a 4-byte
     * zero encoding). Charged to CpuToPim.
     */
    void initQTables(pimsim::CommandStream &stream,
                     rlcore::StateId num_states,
                     rlcore::ActionId num_actions) const;

    /**
     * Gather all per-core Q-tables (functional + timing), including
     * the on-core descale-to-FP32 step, charged to @p bucket.
     * Dropped cores' tables come back zero-filled — filter with
     * CommandStream::isDead before aggregating.
     *
     * A corrupted gather is retried under @p retry (the on-core
     * conversion is *not* redone — the converted table still sits in
     * the bank, only the wire transfer failed). With no policy, or
     * once its limit is exhausted, the run dies loudly.
     */
    std::vector<rlcore::QTable> gatherQTables(
        pimsim::CommandStream &stream, rlcore::StateId num_states,
        rlcore::ActionId num_actions, pimsim::TimeBucket bucket,
        const RetryPolicy *retry = nullptr) const;

    /**
     * Broadcast one Q-table to every core's MRAM Q region, including
     * the on-core requantise step, charged to @p bucket.
     */
    void broadcastQTable(pimsim::CommandStream &stream,
                         const rlcore::QTable &q,
                         pimsim::TimeBucket bucket,
                         std::string_view label = "broadcast:q") const;

    /**
     * The exact bytes broadcastQTable would put on the wire for @p q
     * (FP32 copy or the fixed-point encoding). The session restore
     * path pokes these bytes into MRAM functionally, so a restored
     * bank is byte-identical to one the last broadcast wrote.
     */
    std::vector<std::uint8_t> packWire(const rlcore::QTable &q) const;

  private:
    Workload _workload;
    rlcore::Hyper _hyper;
};

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_QTABLE_IO_HH
