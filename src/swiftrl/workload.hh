/**
 * @file
 * Workload descriptors: the 12 PIM training variants SwiftRL
 * implements and evaluates — {Q-learning, SARSA} x {SEQ, RAN, STR} x
 * {FP32, INT32} — with the paper's naming convention.
 */

#ifndef SWIFTRL_SWIFTRL_WORKLOAD_HH
#define SWIFTRL_SWIFTRL_WORKLOAD_HH

#include <string>
#include <vector>

#include "rlcore/trainers.hh"
#include "rlcore/types.hh"

namespace swiftrl {

/** One of the paper's 12 training workload variants. */
struct Workload
{
    rlcore::Algorithm algo = rlcore::Algorithm::QLearning;
    rlcore::Sampling sampling = rlcore::Sampling::Seq;
    rlcore::NumericFormat format = rlcore::NumericFormat::Fp32;

    /** Paper-style name, e.g. "Q-learner-SEQ-FP32", "SARSA-RAN-INT32". */
    std::string name() const;

    bool operator==(const Workload &) const = default;
};

/** All 12 variants, in the paper's presentation order. */
std::vector<Workload> allWorkloads();

/** The 6 variants of one algorithm. */
std::vector<Workload> workloadsFor(rlcore::Algorithm algo);

/**
 * The paper's 12 variants plus the 6 INT8 custom-multiply variants
 * (the optional UPMEM-specific optimisation of Sec. 3.2.1, applicable
 * to limited-value-range environments such as frozen lake).
 */
std::vector<Workload> extendedWorkloads();

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_WORKLOAD_HH
