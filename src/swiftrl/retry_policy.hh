/**
 * @file
 * Bounded-retry recovery policy shared by both trainers.
 *
 * The command stream reports faults (pimsim::CommandStatus) but never
 * recovers on its own — what to do about a fault is training-loop
 * policy. The trainers use one shared loop (runWithRecovery):
 *
 *  - TransientKernel / CorruptGather: charge a modelled backoff delay
 *    to the Recovery track, then reissue the command. A failed
 *    command has no functional effect and retries are fresh fault
 *    sites, so a retried run converges to the *bit-identical* Q of a
 *    fault-free run.
 *  - PermanentDropout: hand the error to the caller's dropout
 *    handler first (chunk redistribution over the survivors plus an
 *    aggregate-Q re-broadcast — or a fatal error where redistribution
 *    is impossible, e.g. multi-agent mode), then reissue. The
 *    redistribution transfers are the recovery cost; no extra
 *    backoff is charged on top.
 *
 * When a command still fails after `limit` retries the run dies
 * loudly ("retry limit ... exhausted") — a fault rate the policy
 * cannot absorb is an experiment-configuration error, and
 * docs/ARCHITECTURE.md §8 says those die, not limp.
 */

#ifndef SWIFTRL_SWIFTRL_RETRY_POLICY_HH
#define SWIFTRL_SWIFTRL_RETRY_POLICY_HH

#include <string_view>

#include "common/logging.hh"
#include "pimsim/command_stream.hh"
#include "pimsim/fault_plan.hh"

namespace swiftrl {

/** How a trainer responds to faulted commands. */
struct RetryPolicy
{
    /** Retries per command before giving up (attempts = 1 + limit). */
    int limit = 3;

    /**
     * Modelled host delay before the first retry of a transient or
     * corruption fault (fault-status clear + command re-setup). See
     * docs/COSTMODEL.md.
     */
    double backoffSec = 50.0e-6;

    /** Growth factor of the backoff across consecutive retries. */
    double backoffMultiplier = 2.0;

    /** Backoff before retry number @p retry (0-based), seconds. */
    double
    backoffFor(int retry) const
    {
        double b = backoffSec;
        for (int i = 0; i < retry; ++i)
            b *= backoffMultiplier;
        return b;
    }
};

/** Validate retry-policy parameters; fatal on nonsense. */
inline void
validate(const RetryPolicy &policy)
{
    if (policy.limit < 0)
        SWIFTRL_FATAL("retry limit must be >= 0, got ", policy.limit);
    if (policy.backoffSec < 0.0)
        SWIFTRL_FATAL("retry backoff must be >= 0, got ",
                      policy.backoffSec);
    if (policy.backoffMultiplier < 1.0)
        SWIFTRL_FATAL("backoff multiplier must be >= 1, got ",
                      policy.backoffMultiplier);
}

/**
 * Issue a fault-eligible command until it completes or the policy is
 * exhausted. @p attempt enqueues the command once and returns its
 * CommandStatus; @p on_dropout recovers from a permanent core loss
 * (redistribute, or die where that is impossible) before the reissue.
 * Fatal with "retry limit ... exhausted" when retries run out.
 * @return total modelled seconds across attempts and backoffs.
 */
template <typename AttemptFn, typename DropoutFn>
double
runWithRecovery(pimsim::CommandStream &stream,
                const RetryPolicy &policy, std::string_view what,
                AttemptFn &&attempt, DropoutFn &&on_dropout)
{
    double seconds = 0.0;
    int retries = 0;
    for (;;) {
        const pimsim::CommandStatus status = attempt();
        seconds += status.seconds;
        if (status.ok())
            return seconds;
        if (retries >= policy.limit) {
            SWIFTRL_FATAL(
                "retry limit (", policy.limit, ") exhausted for ",
                what, ": last fault ",
                faultKindName(status.error->kind), " at site ",
                status.error->site, " hit ", status.error->dpus.size(),
                " core(s)");
        }
        if (status.error->kind ==
            pimsim::FaultKind::PermanentDropout) {
            on_dropout(*status.error);
        } else {
            seconds += stream.recoveryDelay(
                policy.backoffFor(retries), "backoff:retry");
        }
        ++retries;
    }
}

/**
 * Count the failed command attempts recorded on a timeline (Recovery
 * events labelled "fault:<kind>") — how trainers fill
 * `faultsDetected` without keeping a parallel counter.
 */
inline int
countFaultEvents(const pimsim::Timeline &timeline)
{
    int n = 0;
    for (const auto &event : timeline.events()) {
        if (event.label.rfind("fault:", 0) == 0)
            ++n;
    }
    return n;
}

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_RETRY_POLICY_HH
