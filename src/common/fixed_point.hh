/**
 * @file
 * Fixed-point arithmetic used by the INT32 PIM kernels.
 *
 * SwiftRL (Sec. 3.2.1) sidesteps the cost of runtime-emulated FP32 on
 * UPMEM DPUs by scaling the reward, learning rate, and discount factor
 * with a constant scale factor of 10,000, computing the Q-update in
 * 32-bit integers, and descaling before results leave the PIM core.
 * Fixed32 reproduces that arithmetic bit-for-bit on the host so the
 * simulated kernels and the CPU reference implementations share one
 * definition of the quantised update.
 */

#ifndef SWIFTRL_COMMON_FIXED_POINT_HH
#define SWIFTRL_COMMON_FIXED_POINT_HH

#include <cstdint>
#include <limits>

namespace swiftrl::common {

/** The paper's constant scale factor for INT32 training. */
inline constexpr std::int32_t kDefaultScale = 10000;

/**
 * A 32-bit fixed-point value with a compile-time decimal scale.
 *
 * The representation of a real value x is round(x * Scale) stored in an
 * int32_t. Multiplication widens to 64 bits for the intermediate
 * product, divides by Scale, and saturates on overflow — mirroring the
 * shift-and-add emulation path the UPMEM runtime uses for 32-bit
 * multiplies (which our cost model charges separately).
 */
template <std::int32_t Scale = kDefaultScale>
class Fixed
{
  public:
    static_assert(Scale > 0, "scale factor must be positive");

    /** Scale factor exposed for kernels that descale manually. */
    static constexpr std::int32_t scale = Scale;

    constexpr Fixed() = default;

    /** Construct from a raw, already-scaled integer representation. */
    static constexpr Fixed
    fromRaw(std::int32_t raw)
    {
        Fixed f;
        f._raw = raw;
        return f;
    }

    /** Quantise a real value (rounds to nearest, ties away from 0). */
    static constexpr Fixed
    fromReal(double value)
    {
        const double scaled = value * static_cast<double>(Scale);
        const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
        return fromRaw(saturateToInt32(rounded));
    }

    /** Raw scaled integer representation. */
    constexpr std::int32_t raw() const { return _raw; }

    /** Convert back to a real value (the "descale" step). */
    constexpr double
    toReal() const
    {
        return static_cast<double>(_raw) / static_cast<double>(Scale);
    }

    /** Convert to float, matching the PIM-side descale-to-FP32 path. */
    constexpr float
    toFloat() const
    {
        return static_cast<float>(_raw) / static_cast<float>(Scale);
    }

    constexpr Fixed
    operator+(Fixed other) const
    {
        return fromRaw(saturatingAdd(_raw, other._raw));
    }

    constexpr Fixed
    operator-(Fixed other) const
    {
        return fromRaw(saturatingAdd(_raw, negate(other._raw)));
    }

    /**
     * Fixed-point multiply: widen, multiply, rescale with rounding.
     * Matches (a * b) / Scale computed in 64-bit then saturated.
     */
    constexpr Fixed
    operator*(Fixed other) const
    {
        const std::int64_t prod =
            static_cast<std::int64_t>(_raw) *
            static_cast<std::int64_t>(other._raw);
        const std::int64_t half = Scale / 2;
        const std::int64_t rescaled =
            prod >= 0 ? (prod + half) / Scale : (prod - half) / Scale;
        return fromRaw(saturateToInt32Wide(rescaled));
    }

    constexpr Fixed
    operator-() const
    {
        return fromRaw(negate(_raw));
    }

    constexpr bool operator==(const Fixed &) const = default;

    constexpr bool operator<(Fixed other) const { return _raw < other._raw; }
    constexpr bool operator>(Fixed other) const { return _raw > other._raw; }
    constexpr bool operator<=(Fixed o) const { return _raw <= o._raw; }
    constexpr bool operator>=(Fixed o) const { return _raw >= o._raw; }

  private:
    static constexpr std::int32_t
    saturateToInt32(double v)
    {
        constexpr double lo = std::numeric_limits<std::int32_t>::min();
        constexpr double hi = std::numeric_limits<std::int32_t>::max();
        if (v <= lo)
            return std::numeric_limits<std::int32_t>::min();
        if (v >= hi)
            return std::numeric_limits<std::int32_t>::max();
        return static_cast<std::int32_t>(v);
    }

    static constexpr std::int32_t
    saturateToInt32Wide(std::int64_t v)
    {
        constexpr std::int64_t lo = std::numeric_limits<std::int32_t>::min();
        constexpr std::int64_t hi = std::numeric_limits<std::int32_t>::max();
        if (v < lo)
            return std::numeric_limits<std::int32_t>::min();
        if (v > hi)
            return std::numeric_limits<std::int32_t>::max();
        return static_cast<std::int32_t>(v);
    }

    static constexpr std::int32_t
    saturatingAdd(std::int32_t a, std::int32_t b)
    {
        return saturateToInt32Wide(static_cast<std::int64_t>(a) +
                                   static_cast<std::int64_t>(b));
    }

    static constexpr std::int32_t
    negate(std::int32_t a)
    {
        if (a == std::numeric_limits<std::int32_t>::min())
            return std::numeric_limits<std::int32_t>::max();
        return -a;
    }

    std::int32_t _raw = 0;
};

/** The paper's configuration: 32-bit fixed point, scale 10,000. */
using Fixed32 = Fixed<kDefaultScale>;

/**
 * Maximum absolute real value representable at a given scale before an
 * int32 overflows. Useful for asserting the environment's reward range
 * stays inside the safe region (the paper chose 10,000 "to prevent
 * overflow and underflow errors").
 */
double fixedPointRange(std::int32_t scale_factor);

/** Quantisation step (smallest representable increment) at a scale. */
double fixedPointResolution(std::int32_t scale_factor);

} // namespace swiftrl::common

#endif // SWIFTRL_COMMON_FIXED_POINT_HH
