#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace swiftrl::common {

TextTable::TextTable(std::string title) : _title(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    SWIFTRL_ASSERT(_header.empty() || row.size() == _header.size(),
                   "row width ", row.size(), " != header width ",
                   _header.size());
    SWIFTRL_ASSERT(!row.empty(), "empty rows are reserved for rules");
    _rows.push_back(std::move(row));
}

void
TextTable::addRule()
{
    _rows.emplace_back();
}

void
TextTable::print(std::ostream &os) const
{
    const std::size_t cols =
        _header.empty()
            ? (_rows.empty() ? 0 : _rows.front().size())
            : _header.size();
    std::vector<std::size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    if (!_header.empty())
        widen(_header);
    for (const auto &row : _rows) {
        if (!row.empty())
            widen(row);
    }

    std::size_t total = cols == 0 ? 0 : 3 * (cols - 1);
    for (auto w : width)
        total += w;

    auto rule = [&]() { os << std::string(total, '-') << "\n"; };
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            if (c + 1 < row.size())
                os << " | ";
        }
        os << "\n";
    };

    os << "== " << _title << " ==\n";
    if (!_header.empty()) {
        emit(_header);
        rule();
    }
    for (const auto &row : _rows) {
        if (row.empty())
            rule();
        else
            emit(row);
    }
    os.flush();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::num(long long v)
{
    return std::to_string(v);
}

std::string
TextTable::speedup(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v << "x";
    return oss.str();
}

std::string
TextTable::percent(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << fraction * 100.0 << "%";
    return oss.str();
}

} // namespace swiftrl::common
