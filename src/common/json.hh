/**
 * @file
 * Shared JSON utilities: the one string escaper and number renderer
 * every exporter uses (Chrome traces, metrics JSON, manifests), plus
 * a small recursive-descent parser for configuration documents (the
 * C API's `params_json` strings).
 *
 * Writing rules, fixed across the repo:
 *
 *  - `jsonEscape` escapes `"` and `\` with a backslash and renders
 *    every control character (< 0x20) as a `\uXXXX` escape. No
 *    short escapes (`\n`, `\t`): tools that grep traces for labels
 *    rely on the `\uXXXX` form, and one canonical spelling keeps
 *    exports byte-deterministic across writers.
 *  - `jsonNumber` renders a double as the shortest decimal string
 *    that parses back to the same bits (std::to_chars), so bucket
 *    bounds like 1.1 print as "1.1" while exports stay
 *    byte-deterministic.
 *
 * The parser accepts strict JSON (objects, arrays, strings with the
 * standard escapes, numbers, booleans, null) and reports the byte
 * offset of the first error. It exists for *configuration*, not for
 * data interchange: documents are expected to be small, and the
 * whole value tree is materialised eagerly.
 */

#ifndef SWIFTRL_COMMON_JSON_HH
#define SWIFTRL_COMMON_JSON_HH

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swiftrl::json {

/** Escape a JSON string body; see file comment for the rules. */
std::string jsonEscape(std::string_view s);

/** Shortest round-trip decimal rendering of @p v. */
std::string jsonNumber(double v);

/**
 * One parsed JSON value. A tagged union in struct clothing: only the
 * member matching `type` is meaningful. Object members preserve
 * source order (duplicate keys keep the last occurrence on lookup,
 * matching common JSON semantics).
 */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isBool() const { return type == Type::Bool; }

    /**
     * Object member lookup (last occurrence wins); nullptr when this
     * is not an object or the key is absent.
     */
    const JsonValue *find(std::string_view key) const;

    /** Member as double, or @p fallback when absent/not a number. */
    double numberOr(std::string_view key, double fallback) const;

    /** Member as long, or @p fallback when absent/not a number. */
    long intOr(std::string_view key, long fallback) const;

    /** Member as bool, or @p fallback when absent/not a bool. */
    bool boolOr(std::string_view key, bool fallback) const;

    /** Member as string, or @p fallback when absent/not a string. */
    std::string stringOr(std::string_view key,
                         std::string_view fallback) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected). On failure returns std::nullopt and,
 * when @p error is non-null, stores "offset N: reason".
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace swiftrl::json

#endif // SWIFTRL_COMMON_JSON_HH
