#include "common/logging.hh"

#include <atomic>
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace swiftrl::common {

namespace {

/**
 * One mutex over every message write. Trainer progress lines and
 * warnings can originate from host-pool workers and actor threads
 * concurrently; serialising the stream insert keeps lines intact.
 * fatal/panic take it too (released before exit/abort) so a dying
 * thread's last message doesn't interleave with a live one's.
 * Function-local static so it is constructed before any caller —
 * including the SWIFTRL_LOG warning emitted during static init.
 */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::chrono::steady_clock::time_point
processStart()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

std::atomic<LogEventHook> g_logEventHook{nullptr};
std::atomic<CrashDumpHook> g_crashDumpHook{nullptr};

/** One-time latch for the unknown-level-name warning (env or CLI). */
std::atomic<bool> g_levelNameWarned{false};

/**
 * Emit one log line: "[<monotonic seconds>] <level>: <msg>". The
 * timestamp attributes interleaved actor/fleet/serving output to a
 * moment; the level tag keeps `grep '] warn:'` working.
 */
void
writeLine(const char *level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    if (const LogEventHook hook =
            g_logEventHook.load(std::memory_order_acquire))
        hook(level, msg.c_str());
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[%.6f] ", monotonicSeconds());
    std::cerr << stamp << level << ": " << msg << "\n";
}

void
warnUnknownLevelName(std::string_view name, std::string_view source)
{
    if (g_levelNameWarned.exchange(true, std::memory_order_relaxed))
        return;
    writeLine("warn",
              detail::concat(source, "=", name,
                             " is not a log level "
                             "(quiet|warn|inform|debug); using 'inform'"));
}

/**
 * Resolve the initial level once, honouring the SWIFTRL_LOG
 * environment variable ("quiet" | "warn" | "inform" | "debug"); an
 * unset value keeps the Inform default, and an unrecognised value
 * warns once and falls back to Inform — silently ignoring a typo
 * would look like a broken flag.
 */
LogLevel
initialLevel()
{
    const char *env = std::getenv("SWIFTRL_LOG");
    if (!env || !*env)
        return LogLevel::Inform;
    const auto parsed = parseLogLevel(env);
    if (!parsed) {
        warnUnknownLevelName(env, "SWIFTRL_LOG");
        return LogLevel::Inform;
    }
    return *parsed;
}

std::atomic<LogLevel> g_level{initialLevel()};

} // namespace

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (lower == "quiet")
        return LogLevel::Quiet;
    if (lower == "warn")
        return LogLevel::Warn;
    if (lower == "inform" || lower == "info")
        return LogLevel::Inform;
    if (lower == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
setLogLevelFromName(std::string_view name, std::string_view source)
{
    const auto parsed = parseLogLevel(name);
    if (!parsed) {
        warnUnknownLevelName(name, source);
        setLogLevel(LogLevel::Inform);
        return;
    }
    setLogLevel(*parsed);
}

double
monotonicSeconds()
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         processStart())
        .count();
}

void
setLogEventHook(LogEventHook hook)
{
    g_logEventHook.store(hook, std::memory_order_release);
}

void
setCrashDumpHook(CrashDumpHook hook)
{
    g_crashDumpHook.store(hook, std::memory_order_release);
}

namespace detail {

namespace {

void
runCrashDumpHook()
{
    if (const CrashDumpHook hook =
            g_crashDumpHook.load(std::memory_order_acquire))
        hook();
}

} // namespace

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    writeLine("fatal", concat(msg, " (", file, ":", line, ")"));
    runCrashDumpHook();
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine("panic", concat(msg, " (", file, ":", line, ")"));
    runCrashDumpHook();
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        writeLine("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        writeLine("inform", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        writeLine("debug", msg);
}

} // namespace detail

} // namespace swiftrl::common
