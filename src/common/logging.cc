#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace swiftrl::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Inform};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")\n";
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        std::cerr << "info: " << msg << "\n";
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::cerr << "debug: " << msg << "\n";
}

} // namespace detail

} // namespace swiftrl::common
