#include "common/logging.hh"

#include <atomic>
#include <algorithm>
#include <cctype>
#include <iostream>
#include <mutex>

namespace swiftrl::common {

namespace {

/**
 * Resolve the initial level once, honouring the SWIFTRL_LOG
 * environment variable ("quiet" | "warn" | "inform" | "debug"); an
 * unset or unrecognised value keeps the Inform default (the
 * unrecognised case warns — silently ignoring a typo would look like
 * a broken flag).
 */
LogLevel
initialLevel()
{
    const char *env = std::getenv("SWIFTRL_LOG");
    if (!env || !*env)
        return LogLevel::Inform;
    const auto parsed = parseLogLevel(env);
    if (!parsed) {
        std::cerr << "warn: SWIFTRL_LOG=" << env
                  << " is not a log level (quiet|warn|inform|debug); "
                     "keeping 'inform'\n";
        return LogLevel::Inform;
    }
    return *parsed;
}

std::atomic<LogLevel> g_level{initialLevel()};

/**
 * One mutex over every message write. Trainer progress lines and
 * warnings can originate from host-pool workers and actor threads
 * concurrently; serialising the stream insert keeps lines intact.
 * fatal/panic take it too (released before exit/abort) so a dying
 * thread's last message doesn't interleave with a live one's.
 */
std::mutex g_mutex;

} // namespace

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (lower == "quiet")
        return LogLevel::Quiet;
    if (lower == "warn")
        return LogLevel::Warn;
    if (lower == "inform" || lower == "info")
        return LogLevel::Inform;
    if (lower == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::cerr << "fatal: " << msg << " (" << file << ":" << line
                  << ")\n";
    }
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::cerr << "panic: " << msg << " (" << file << ":" << line
                  << ")\n";
    }
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn) {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::cerr << "warn: " << msg << "\n";
    }
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform) {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::cerr << "info: " << msg << "\n";
    }
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug) {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::cerr << "debug: " << msg << "\n";
    }
}

} // namespace detail

} // namespace swiftrl::common
