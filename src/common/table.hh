/**
 * @file
 * Plain-text table printer. Every bench binary in bench/ renders its
 * figure/table reproduction through this, so all outputs share one
 * format that is easy to diff against EXPERIMENTS.md.
 */

#ifndef SWIFTRL_COMMON_TABLE_HH
#define SWIFTRL_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace swiftrl::common {

/**
 * A column-aligned ASCII table with a title, a header row, and data
 * rows. Cells are strings; helpers format numbers consistently.
 */
class TextTable
{
  public:
    /** @param title caption printed above the table. */
    explicit TextTable(std::string title);

    /** Set the header row (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal rule before the next row. */
    void addRule();

    /** Render with column alignment to a stream. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return _rows.size(); }

    /** Fixed-precision formatting helper. */
    static std::string num(double v, int precision = 3);

    /** Integer formatting helper. */
    static std::string num(long long v);

    /** Format a ratio as "N.NNx". */
    static std::string speedup(double v, int precision = 2);

    /** Format a fraction as a percentage "NN.N%". */
    static std::string percent(double fraction, int precision = 1);

  private:
    std::string _title;
    std::vector<std::string> _header;
    /** Rows; an empty row vector encodes a horizontal rule. */
    std::vector<std::vector<std::string>> _rows;
};

} // namespace swiftrl::common

#endif // SWIFTRL_COMMON_TABLE_HH
