/**
 * @file
 * Minimal command-line flag parser shared by bench and example
 * binaries. Flags take the form --name=value or --name value; bare
 * --name sets a boolean flag to true.
 */

#ifndef SWIFTRL_COMMON_CLI_HH
#define SWIFTRL_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace swiftrl::common {

/**
 * Parsed command line. Unknown flags are fatal (catching typos in
 * experiment parameters beats silently running the wrong sweep).
 */
class CliFlags
{
  public:
    /**
     * Parse argv.
     *
     * @param known the set of accepted flag names (without "--").
     */
    CliFlags(int argc, char **argv, std::vector<std::string> known);

    /** True when the flag was passed on the command line. */
    bool has(const std::string &name) const;

    /** String value, or @p fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Integer value, or @p fallback when absent. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Floating-point value, or @p fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean value; bare flag means true. */
    bool getBool(const std::string &name, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return _positional;
    }

  private:
    std::map<std::string, std::string> _values;

    /**
     * Flags passed bare (no value token followed). Only getBool may
     * read these as "true"; the typed getters reject them with an
     * "expects a value" diagnostic, which catches --seed --trace
     * (value swallowed by the next flag) at the right flag instead of
     * as a confusing type error downstream.
     */
    std::set<std::string> _bare;
    std::vector<std::string> _positional;
};

} // namespace swiftrl::common

#endif // SWIFTRL_COMMON_CLI_HH
