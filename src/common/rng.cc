#include "common/rng.hh"

#include "common/logging.hh"

namespace swiftrl::common {

XorShift128::XorShift128(std::uint64_t seed)
{
    SplitMix64 mix(seed);
    _s0 = mix.next();
    _s1 = mix.next();
    // A zero state would lock the generator at zero forever.
    if (_s0 == 0 && _s1 == 0)
        _s1 = 0x9e3779b97f4a7c15ull;
}

std::uint64_t
XorShift128::next()
{
    std::uint64_t x = _s0;
    const std::uint64_t y = _s1;
    _s0 = y;
    x ^= x << 23;
    _s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
    return _s1 + y;
}

std::uint64_t
XorShift128::nextBounded(std::uint64_t bound)
{
    SWIFTRL_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Lemire's multiply-shift with rejection for exact uniformity.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
        const std::uint64_t r = next();
        const unsigned __int128 wide =
            static_cast<unsigned __int128>(r) * bound;
        const std::uint64_t low = static_cast<std::uint64_t>(wide);
        if (low >= threshold)
            return static_cast<std::uint64_t>(wide >> 64);
    }
}

double
XorShift128::nextReal()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

XorShift128
XorShift128::split()
{
    XorShift128 child(next());
    return child;
}

} // namespace swiftrl::common
