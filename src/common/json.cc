#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace swiftrl::json {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    const JsonValue *hit = nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            hit = &v;
    }
    return hit;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return (v && v->isNumber()) ? v->number : fallback;
}

long
JsonValue::intOr(std::string_view key, long fallback) const
{
    const JsonValue *v = find(key);
    return (v && v->isNumber()) ? static_cast<long>(v->number)
                                : fallback;
}

bool
JsonValue::boolOr(std::string_view key, bool fallback) const
{
    const JsonValue *v = find(key);
    return (v && v->isBool()) ? v->boolean : fallback;
}

std::string
JsonValue::stringOr(std::string_view key,
                    std::string_view fallback) const
{
    const JsonValue *v = find(key);
    return (v && v->isString()) ? v->string : std::string(fallback);
}

namespace {

/** Recursive-descent parser over one immutable text buffer. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : _text(text), _error(error)
    {
    }

    std::optional<JsonValue>
    document()
    {
        skipWs();
        JsonValue v;
        if (!value(v, 0))
            return std::nullopt;
        skipWs();
        if (_pos != _text.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    // Nesting guard: configuration documents are shallow; a bound
    // keeps hostile input from exhausting the stack.
    static constexpr int kMaxDepth = 64;

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    fail(const char *reason)
    {
        if (_error && _error->empty())
            *_error = "offset " + std::to_string(_pos) + ": " + reason;
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return fail("invalid literal");
        _pos += word.size();
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        switch (_text[_pos]) {
        case '{':
            return object(out, depth);
        case '[':
            return array(out, depth);
        case '"':
            out.type = JsonValue::Type::String;
            return string(out.string);
        case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
        default:
            return number(out);
        }
    }

    bool
    object(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::Object;
        ++_pos; // '{'
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':' after object key");
            ++_pos;
            skipWs();
            JsonValue v;
            if (!value(v, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::Array;
        ++_pos; // '['
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue v;
            if (!value(v, depth + 1))
                return false;
            out.elements.push_back(std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(std::string &out)
    {
        ++_pos; // opening '"'
        while (_pos < _text.size()) {
            const char c = _text[_pos];
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++_pos;
                continue;
            }
            ++_pos;
            if (_pos >= _text.size())
                return fail("unterminated escape");
            const char e = _text[_pos];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (_pos + 4 >= _text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char h = _text[_pos + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape digit");
                }
                // Configuration strings are ASCII in practice; wider
                // code points round-trip as UTF-8.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                _pos += 4;
                break;
            }
            default:
                return fail("invalid escape character");
            }
            ++_pos;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        auto digits = [&] {
            const std::size_t before = _pos;
            while (_pos < _text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(_text[_pos])))
                ++_pos;
            return _pos > before;
        };
        if (!digits())
            return fail("invalid number");
        if (_pos < _text.size() && _text[_pos] == '.') {
            ++_pos;
            if (!digits())
                return fail("digits required after decimal point");
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            if (!digits())
                return fail("digits required in exponent");
        }
        double v = 0.0;
        const char *first = _text.data() + start;
        const char *last = _text.data() + _pos;
        const auto res = std::from_chars(first, last, v);
        if (res.ec != std::errc() || res.ptr != last) {
            _pos = start;
            return fail("unparseable number");
        }
        out.type = JsonValue::Type::Number;
        out.number = v;
        return true;
    }

    std::string_view _text;
    std::string *_error;
    std::size_t _pos = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return Parser(text, error).document();
}

} // namespace swiftrl::json
