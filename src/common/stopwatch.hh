/**
 * @file
 * Wall-clock stopwatch for the host-side baselines. All PIM-side
 * numbers come from the simulator's integer cycle clock, never from
 * this class.
 */

#ifndef SWIFTRL_COMMON_STOPWATCH_HH
#define SWIFTRL_COMMON_STOPWATCH_HH

#include <chrono>

namespace swiftrl::common {

/** Monotonic wall-clock timer. */
class Stopwatch
{
  public:
    Stopwatch() : _start(Clock::now()) {}

    /** Restart the timer. */
    void reset() { _start = Clock::now(); }

    /** Elapsed time in seconds. */
    double
    seconds() const
    {
        const auto d = Clock::now() - _start;
        return std::chrono::duration<double>(d).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point _start;
};

} // namespace swiftrl::common

#endif // SWIFTRL_COMMON_STOPWATCH_HH
