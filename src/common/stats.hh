/**
 * @file
 * Streaming summary statistics used by evaluation rollouts and bench
 * harnesses (mean reward, execution-time spreads, scaling slopes).
 */

#ifndef SWIFTRL_COMMON_STATS_HH
#define SWIFTRL_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace swiftrl::common {

/**
 * Welford-style running accumulator: numerically stable mean/variance
 * without storing samples.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return _count; }

    /** Sample mean (0 when empty). */
    double mean() const { return _mean; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return _min; }

    /** Largest observation (-inf when empty). */
    double max() const { return _max; }

    /** Sum of all observations. */
    double sum() const { return _sum; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min;
    double _max;

  public:
    RunningStat();
};

/**
 * Least-squares slope of log2(y) against log2(x) — the scaling
 * exponent. A strong-scaling experiment with perfect linear speedup
 * has exponent -1 (time halves when cores double).
 */
double log2ScalingExponent(const std::vector<double> &x,
                           const std::vector<double> &y);

/** Percentile of a sample set (linear interpolation, p in [0, 100]). */
double percentile(std::vector<double> samples, double p);

} // namespace swiftrl::common

#endif // SWIFTRL_COMMON_STATS_HH
