/**
 * @file
 * Random number generators.
 *
 * Two families are provided:
 *  - Lcg32: the linear congruential generator SwiftRL implements as a
 *    custom PIM routine, because the C standard library's rand() is not
 *    available on UPMEM DPUs (Sec. 3.2.1). Kernels running inside the
 *    simulated PIM cores must use this generator so the simulation
 *    exercises the same arithmetic the paper's DPU code does.
 *  - SplitMix64 / XorShift128: fast host-side generators used for
 *    dataset collection, environment dynamics, and evaluation rollouts.
 *
 * All generators are deterministic given a seed; every experiment in
 * this repository reports its seeds.
 */

#ifndef SWIFTRL_COMMON_RNG_HH
#define SWIFTRL_COMMON_RNG_HH

#include <cstdint>

namespace swiftrl::common {

/**
 * 32-bit linear congruential generator with the Numerical Recipes
 * constants, replicating the custom rand() routine SwiftRL runs on the
 * PIM cores. One multiply + one add per draw — cheap even on hardware
 * that emulates 32-bit multiplication.
 */
class Lcg32
{
  public:
    explicit Lcg32(std::uint32_t seed = 1u) : _state(seed) {}

    /** Next raw 32-bit draw. */
    std::uint32_t
    next()
    {
        _state = _state * 1664525u + 1013904223u;
        return _state;
    }

    /**
     * Uniform draw in [0, bound) using the high bits (the low bits of
     * an LCG have short periods).
     *
     * @param bound exclusive upper bound; must be > 0.
     */
    std::uint32_t
    nextBounded(std::uint32_t bound)
    {
        const std::uint64_t wide =
            static_cast<std::uint64_t>(next()) * bound;
        return static_cast<std::uint32_t>(wide >> 32);
    }

    /** Uniform real draw in [0, 1). */
    double
    nextReal()
    {
        return static_cast<double>(next()) * (1.0 / 4294967296.0);
    }

    /** Current internal state (for checkpointing / tests). */
    std::uint32_t state() const { return _state; }

    /** Reseed the generator. */
    void seed(std::uint32_t s) { _state = s; }

  private:
    std::uint32_t _state;
};

/**
 * SplitMix64: robust seeding/stream-splitting generator. Used to derive
 * independent per-core and per-agent seeds from one experiment seed.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : _state(seed)
    {}

    /** Next 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (_state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t _state;
};

/**
 * xorshift128+ host generator: fast, good-quality stream for Monte
 * Carlo environment dynamics and sampling.
 */
class XorShift128
{
  public:
    /** Seed via SplitMix64 so any 64-bit seed yields a good state. */
    explicit XorShift128(std::uint64_t seed = 0xdeadbeefcafef00dull);

    /** Next 64-bit draw. */
    std::uint64_t next();

    /** Uniform draw in [0, bound) with Lemire rejection (unbiased). */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform real draw in [0, 1). */
    double nextReal();

    /** Derive an independent child generator (for per-worker streams). */
    XorShift128 split();

  private:
    std::uint64_t _s0;
    std::uint64_t _s1;
};

} // namespace swiftrl::common

#endif // SWIFTRL_COMMON_RNG_HH
