#include "common/cli.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace swiftrl::common {

CliFlags::CliFlags(int argc, char **argv, std::vector<std::string> known)
{
    auto is_known = [&](const std::string &name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(std::move(arg));
            continue;
        }
        arg.erase(0, 2);
        std::string name, value;
        bool bare = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // --name value (when the next token is not a flag). A
            // bare flag reads as "true", but only getBool accepts
            // that — the typed getters reject it, so a value
            // swallowed by the next flag is caught at this flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
                bare = true;
            }
        }
        if (!is_known(name))
            SWIFTRL_FATAL("unknown flag --", name);
        // Last-one-wins would silently ignore half of an experiment
        // command line; repeating a flag is always a mistake here.
        if (_values.count(name) > 0)
            SWIFTRL_FATAL("duplicate flag --", name);
        _values[name] = value;
        if (bare)
            _bare.insert(name);
    }
}

bool
CliFlags::has(const std::string &name) const
{
    return _values.count(name) > 0;
}

std::string
CliFlags::getString(const std::string &name,
                    const std::string &fallback) const
{
    const auto it = _values.find(name);
    return it == _values.end() ? fallback : it->second;
}

std::int64_t
CliFlags::getInt(const std::string &name, std::int64_t fallback) const
{
    const auto it = _values.find(name);
    if (it == _values.end())
        return fallback;
    if (_bare.count(name) > 0)
        SWIFTRL_FATAL("flag --", name, " expects a value");
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        SWIFTRL_FATAL("flag --", name, " expects an integer, got '",
                      it->second, "'");
    // strtoll clamps out-of-range input to the extremes and flags it
    // via errno; silently training with INT64_MAX episodes is not an
    // acceptable reading of a typo'd seed.
    if (errno == ERANGE)
        SWIFTRL_FATAL("flag --", name, " value '", it->second,
                      "' is out of range for a 64-bit integer");
    return v;
}

double
CliFlags::getDouble(const std::string &name, double fallback) const
{
    const auto it = _values.find(name);
    if (it == _values.end())
        return fallback;
    if (_bare.count(name) > 0)
        SWIFTRL_FATAL("flag --", name, " expects a value");
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        SWIFTRL_FATAL("flag --", name, " expects a number, got '",
                      it->second, "'");
    // Overflow clamps to +/-HUGE_VAL with ERANGE; reject it loudly.
    // (Underflow to a denormal also raises ERANGE but is a usable
    // value, so it passes.)
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        SWIFTRL_FATAL("flag --", name, " value '", it->second,
                      "' is out of range for a double");
    return v;
}

bool
CliFlags::getBool(const std::string &name, bool fallback) const
{
    const auto it = _values.find(name);
    if (it == _values.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    SWIFTRL_FATAL("flag --", name, " expects a boolean, got '", v, "'");
}

} // namespace swiftrl::common
