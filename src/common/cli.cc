#include "common/cli.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace swiftrl::common {

CliFlags::CliFlags(int argc, char **argv, std::vector<std::string> known)
{
    auto is_known = [&](const std::string &name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(std::move(arg));
            continue;
        }
        arg.erase(0, 2);
        std::string name, value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // --name value (when the next token is not a flag)
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (!is_known(name))
            SWIFTRL_FATAL("unknown flag --", name);
        _values[name] = value;
    }
}

bool
CliFlags::has(const std::string &name) const
{
    return _values.count(name) > 0;
}

std::string
CliFlags::getString(const std::string &name,
                    const std::string &fallback) const
{
    const auto it = _values.find(name);
    return it == _values.end() ? fallback : it->second;
}

std::int64_t
CliFlags::getInt(const std::string &name, std::int64_t fallback) const
{
    const auto it = _values.find(name);
    if (it == _values.end())
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        SWIFTRL_FATAL("flag --", name, " expects an integer, got '",
                      it->second, "'");
    return v;
}

double
CliFlags::getDouble(const std::string &name, double fallback) const
{
    const auto it = _values.find(name);
    if (it == _values.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        SWIFTRL_FATAL("flag --", name, " expects a number, got '",
                      it->second, "'");
    return v;
}

bool
CliFlags::getBool(const std::string &name, bool fallback) const
{
    const auto it = _values.find(name);
    if (it == _values.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    SWIFTRL_FATAL("flag --", name, " expects a boolean, got '", v, "'");
}

} // namespace swiftrl::common
