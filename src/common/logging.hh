/**
 * @file
 * Status and error reporting helpers, following the gem5 convention:
 * fatal() for user errors that make continuing impossible, panic() for
 * internal invariant violations (bugs), warn()/inform() for advisory
 * messages that never stop execution.
 */

#ifndef SWIFTRL_COMMON_LOGGING_HH
#define SWIFTRL_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace swiftrl::common {

/** Verbosity levels for the message stream. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/**
 * Global log verbosity; messages above this level are suppressed.
 * Initialised from the SWIFTRL_LOG environment variable
 * (quiet|warn|inform|debug) when set; Inform otherwise. Message
 * writes are serialised, so concurrent log lines never interleave.
 */
LogLevel logLevel();

/** Set the global log verbosity (overrides SWIFTRL_LOG). */
void setLogLevel(LogLevel level);

/**
 * Parse a level name ("quiet", "warn", "inform"/"info", "debug"),
 * case-insensitive; nullopt when unrecognised. Shared by the
 * SWIFTRL_LOG environment hook and the --log-level CLI flag.
 */
std::optional<LogLevel> parseLogLevel(std::string_view name);

/**
 * Set the level from a user-supplied name. An unrecognised name warns
 * once per process (naming @p source, e.g. "--log-level" or
 * "SWIFTRL_LOG") and falls back to Inform — a typo should degrade to
 * the default verbosity, not silently change behaviour or kill the
 * run.
 */
void setLogLevelFromName(std::string_view name, std::string_view source);

/** Monotonic wall-clock seconds since process start. */
double monotonicSeconds();

/**
 * Observer hook called (under the log mutex) with every emitted log
 * line's level tag and message body. Installed by the telemetry
 * tracing layer to feed the flight recorder; pass nullptr to clear.
 * The hook must not log.
 */
using LogEventHook = void (*)(const char *level, const char *message);
void setLogEventHook(LogEventHook hook);

/**
 * Hook called by fatal()/panic() after the failure message is
 * printed, immediately before exit/abort — the flight recorder's
 * chance to dump a causal trail. Runs outside the log mutex (it is
 * expected to write to stderr itself); pass nullptr to clear.
 */
using CrashDumpHook = void (*)();
void setCrashDumpHook(CrashDumpHook hook);

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Terminate because of a condition that is the user's fault (bad
 * configuration, invalid arguments). Exits with status 1.
 */
#define SWIFTRL_FATAL(...) \
    ::swiftrl::common::detail::fatalImpl( \
        __FILE__, __LINE__, ::swiftrl::common::detail::concat(__VA_ARGS__))

/**
 * Terminate because of a condition that should never happen regardless
 * of user input — an internal bug. Aborts (may dump core).
 */
#define SWIFTRL_PANIC(...) \
    ::swiftrl::common::detail::panicImpl( \
        __FILE__, __LINE__, ::swiftrl::common::detail::concat(__VA_ARGS__))

/** Panic unless an internal invariant holds. */
#define SWIFTRL_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::swiftrl::common::detail::panicImpl( \
                __FILE__, __LINE__, \
                ::swiftrl::common::detail::concat( \
                    "assertion failed: " #cond " ", ##__VA_ARGS__)); \
        } \
    } while (0)

/** Advisory: something may not behave as the user expects. */
#define SWIFTRL_WARN(...) \
    ::swiftrl::common::detail::warnImpl( \
        ::swiftrl::common::detail::concat(__VA_ARGS__))

/** Normal operating status message. */
#define SWIFTRL_INFORM(...) \
    ::swiftrl::common::detail::informImpl( \
        ::swiftrl::common::detail::concat(__VA_ARGS__))

/** Developer-facing trace message. */
#define SWIFTRL_DEBUG(...) \
    ::swiftrl::common::detail::debugImpl( \
        ::swiftrl::common::detail::concat(__VA_ARGS__))

} // namespace swiftrl::common

#endif // SWIFTRL_COMMON_LOGGING_HH
