#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace swiftrl::common {

RunningStat::RunningStat()
    : _min(std::numeric_limits<double>::infinity()),
      _max(-std::numeric_limits<double>::infinity())
{
}

void
RunningStat::add(double x)
{
    ++_count;
    _sum += x;
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

double
RunningStat::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
log2ScalingExponent(const std::vector<double> &x,
                    const std::vector<double> &y)
{
    SWIFTRL_ASSERT(x.size() == y.size() && x.size() >= 2,
                   "need at least two matched points");
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = static_cast<double>(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        SWIFTRL_ASSERT(x[i] > 0 && y[i] > 0,
                       "log-log fit requires positive data");
        const double lx = std::log2(x[i]);
        const double ly = std::log2(y[i]);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    const double denom = n * sxx - sx * sx;
    SWIFTRL_ASSERT(denom != 0.0, "degenerate x values");
    return (n * sxy - sx * sy) / denom;
}

double
percentile(std::vector<double> samples, double p)
{
    SWIFTRL_ASSERT(!samples.empty(), "percentile of empty sample set");
    SWIFTRL_ASSERT(p >= 0.0 && p <= 100.0, "p must be in [0, 100]");
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank =
        p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples.size())
        return samples.back();
    return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

} // namespace swiftrl::common
