#include "common/fixed_point.hh"

#include "common/logging.hh"

namespace swiftrl::common {

double
fixedPointRange(std::int32_t scale_factor)
{
    SWIFTRL_ASSERT(scale_factor > 0);
    return static_cast<double>(std::numeric_limits<std::int32_t>::max()) /
           static_cast<double>(scale_factor);
}

double
fixedPointResolution(std::int32_t scale_factor)
{
    SWIFTRL_ASSERT(scale_factor > 0);
    return 1.0 / static_cast<double>(scale_factor);
}

} // namespace swiftrl::common
