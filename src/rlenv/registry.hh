/**
 * @file
 * Name-based environment factory, so benches and examples can select
 * environments from the command line the way Gym does with ids.
 */

#ifndef SWIFTRL_RLENV_REGISTRY_HH
#define SWIFTRL_RLENV_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "rlenv/environment.hh"

namespace swiftrl::rlenv {

/**
 * Instantiate an environment by name or parameterised spec.
 * Fixed names: "frozenlake" (slippery 4x4), "frozenlake-det",
 * "taxi", "cliffwalking". Procedural specs: "lake:<side>" /
 * "lake:<side>:det" (N x N slippery gridworld) and
 * "mptaxi:<side>x<P>" (multi-passenger taxi). Fatal on unknown
 * names or invalid specs.
 */
std::unique_ptr<Environment> makeEnvironment(const std::string &name);

/**
 * Non-fatal variant of makeEnvironment for embedder-facing callers
 * (the C ABI): returns nullptr on unknown names or invalid specs
 * and, when @p error is non-null, stores the reason there.
 */
std::unique_ptr<Environment>
tryMakeEnvironment(const std::string &spec, std::string *error);

/**
 * All fixed registered environment names (procedural spec families
 * are open-ended and not enumerated here).
 */
std::vector<std::string> environmentNames();

} // namespace swiftrl::rlenv

#endif // SWIFTRL_RLENV_REGISTRY_HH
