/**
 * @file
 * Name-based environment factory, so benches and examples can select
 * environments from the command line the way Gym does with ids.
 */

#ifndef SWIFTRL_RLENV_REGISTRY_HH
#define SWIFTRL_RLENV_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "rlenv/environment.hh"

namespace swiftrl::rlenv {

/**
 * Instantiate an environment by name.
 * Known names: "frozenlake" (slippery 4x4), "frozenlake-det", "taxi".
 * Fatal on unknown names.
 */
std::unique_ptr<Environment> makeEnvironment(const std::string &name);

/** All registered environment names. */
std::vector<std::string> environmentNames();

} // namespace swiftrl::rlenv

#endif // SWIFTRL_RLENV_REGISTRY_HH
