/**
 * @file
 * FrozenLake: the 4x4 grid-world from OpenAI Gym used throughout
 * SwiftRL's evaluation. The agent walks from S to G on a frozen lake;
 * holes (H) terminate the episode with zero reward, the goal pays 1.
 * On slippery ice the agent moves in the intended direction with
 * probability 1/3 and slides to each perpendicular direction with
 * probability 1/3 (Gym's is_slippery=True dynamics).
 */

#ifndef SWIFTRL_RLENV_FROZEN_LAKE_HH
#define SWIFTRL_RLENV_FROZEN_LAKE_HH

#include <array>
#include <string>

#include "rlenv/environment.hh"

namespace swiftrl::rlenv {

/** FrozenLake 4x4 (Discrete(16) states, Discrete(4) actions). */
class FrozenLake : public Environment
{
  public:
    /** Action encoding, identical to Gym. */
    enum Action : ActionId { Left = 0, Down = 1, Right = 2, Up = 3 };

    /**
     * @param slippery Gym's is_slippery: when true, motion is
     *        stochastic (1/3 intended, 1/3 each perpendicular).
     */
    explicit FrozenLake(bool slippery = true);

    std::string name() const override;
    StateId numStates() const override { return kStates; }
    ActionId numActions() const override { return kActions; }
    int maxEpisodeSteps() const override { return 100; }

    StateId reset(common::XorShift128 &rng) override;
    StepResult step(ActionId action, common::XorShift128 &rng) override;
    StateId currentState() const override { return _state; }

    /** Tile character ('S','F','H','G') at a state (tests, render). */
    char tileAt(StateId state) const;

    /** True when @p state is a hole or the goal. */
    bool isTerminal(StateId state) const;

    /**
     * Deterministic single-direction move used to build the dynamics:
     * clamps at the grid border (the agent bumps into the wall).
     */
    static StateId moveFrom(StateId state, ActionId direction);

    /** Grid side length. */
    static constexpr StateId kSide = 4;

    /** Number of states. */
    static constexpr StateId kStates = kSide * kSide;

    /** Number of actions. */
    static constexpr ActionId kActions = 4;

  private:
    /** The standard Gym 4x4 map, row-major. */
    static constexpr std::array<char, kStates> kMap = {
        'S', 'F', 'F', 'F',
        'F', 'H', 'F', 'H',
        'F', 'F', 'F', 'H',
        'H', 'F', 'F', 'G',
    };

    bool _slippery;
    StateId _state = 0;
    int _steps = 0;
    bool _episodeDone = true;
};

} // namespace swiftrl::rlenv

#endif // SWIFTRL_RLENV_FROZEN_LAKE_HH
