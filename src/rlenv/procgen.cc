#include "rlenv/procgen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace swiftrl::rlenv {

namespace {

/**
 * SplitMix64 over (seed, index): the stateless per-cell hash that
 * makes procedural maps O(1) memory. Deterministic across platforms.
 */
std::uint64_t
hashAt(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed ^ (index * 0x9e3779b97f4a7c15ULL);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

// --------------------------------------------------------------------
// ProceduralLake

ProceduralLake::ProceduralLake(StateId side, bool slippery,
                               std::uint64_t seed)
    : _side(side), _slippery(slippery), _seed(seed)
{
    SWIFTRL_ASSERT(side >= 2 && side <= kMaxSide,
                   "lake side ", side, " outside [2, ", kMaxSide, "]");
}

std::string
ProceduralLake::name() const
{
    const std::string base = "lake:" + std::to_string(_side);
    return _slippery ? base : base + ":det";
}

int
ProceduralLake::maxEpisodeSteps() const
{
    // The guaranteed path is 2*(side-1) moves; slipping needs slack.
    return std::max(100, 4 * _side);
}

char
ProceduralLake::tileAt(StateId state) const
{
    SWIFTRL_ASSERT(state >= 0 && state < numStates(),
                   "state ", state, " out of range");
    if (state == 0)
        return 'S';
    if (state == numStates() - 1)
        return 'G';
    const StateId row = state / _side;
    const StateId col = state % _side;
    // Top row and rightmost column are always frozen, so the walk
    // right along the top then down the right edge always reaches G:
    // every generated map is solvable by construction.
    if (row == 0 || col == _side - 1)
        return 'F';
    const bool hole =
        hashAt(_seed, static_cast<std::uint64_t>(state)) % 8 == 0;
    return hole ? 'H' : 'F';
}

StateId
ProceduralLake::moveFrom(StateId state, ActionId direction) const
{
    StateId row = state / _side;
    StateId col = state % _side;
    switch (direction) {
      case Left:
        col = col > 0 ? col - 1 : 0;
        break;
      case Down:
        row = row < _side - 1 ? row + 1 : _side - 1;
        break;
      case Right:
        col = col < _side - 1 ? col + 1 : _side - 1;
        break;
      case Up:
        row = row > 0 ? row - 1 : 0;
        break;
      default:
        SWIFTRL_PANIC("invalid ProceduralLake action ", direction);
    }
    return row * _side + col;
}

StateId
ProceduralLake::reset(common::XorShift128 &rng)
{
    (void)rng; // fixed start tile; signature kept uniform
    _state = 0;
    _steps = 0;
    _episodeDone = false;
    return _state;
}

StepResult
ProceduralLake::step(ActionId action, common::XorShift128 &rng)
{
    SWIFTRL_ASSERT(!_episodeDone,
                   "step() on a finished episode; call reset()");
    SWIFTRL_ASSERT(action >= 0 && action < kActions,
                   "invalid action ", action);

    ActionId direction = action;
    if (_slippery) {
        // Gym slides uniformly among {a-1, a, a+1} (mod 4).
        const auto pick = static_cast<ActionId>(rng.nextBounded(3));
        direction = static_cast<ActionId>(
            (action + (pick - 1) + kActions) % kActions);
    }

    _state = moveFrom(_state, direction);
    ++_steps;

    StepResult result;
    result.nextState = _state;
    const char tile = tileAt(_state);
    result.reward = tile == 'G' ? 1.0f : 0.0f;
    result.terminated = tile == 'G' || tile == 'H';
    result.truncated = !result.terminated && _steps >= maxEpisodeSteps();
    _episodeDone = result.done();
    return result;
}

// --------------------------------------------------------------------
// MultiPassengerTaxi

MultiPassengerTaxi::MultiPassengerTaxi(StateId side, int passengers,
                                       std::uint64_t seed)
    : _side(side), _passengers(passengers), _seed(seed), _numStates(0)
{
    SWIFTRL_ASSERT(side >= 2, "taxi grid side ", side, " too small");
    SWIFTRL_ASSERT(passengers >= 1, "need at least one passenger");
    // side^2 * 3^P must fit StateId; computed in 64-bit with an early
    // bail so the product itself cannot overflow.
    std::int64_t states = static_cast<std::int64_t>(side) * side;
    for (int p = 0; p < passengers; ++p) {
        states *= 3;
        SWIFTRL_ASSERT(states <= INT32_MAX,
                       "mptaxi ", side, "x", passengers,
                       " state space overflows 32-bit state ids");
    }
    _numStates = static_cast<StateId>(states);

    _srcCorner.resize(static_cast<std::size_t>(passengers));
    _dstCorner.resize(static_cast<std::size_t>(passengers));
    _status.assign(static_cast<std::size_t>(passengers), Delivered);
    for (int p = 0; p < passengers; ++p) {
        const auto i = static_cast<std::size_t>(p);
        const std::uint64_t draw =
            hashAt(_seed, 2 * static_cast<std::uint64_t>(p));
        const std::uint64_t skew =
            hashAt(_seed, 2 * static_cast<std::uint64_t>(p) + 1);
        _srcCorner[i] = static_cast<int>(draw % 4);
        // Destination is always a different corner.
        _dstCorner[i] =
            static_cast<int>((draw % 4 + 1 + skew % 3) % 4);
    }
}

std::string
MultiPassengerTaxi::name() const
{
    return "mptaxi:" + std::to_string(_side) + "x" +
           std::to_string(_passengers);
}

int
MultiPassengerTaxi::maxEpisodeSteps() const
{
    // Worst-case ferry: corner to corner (~2*side moves) per
    // passenger, with generous slack for the -10 fumbles a random
    // behaviour policy makes.
    return std::max(200, 8 * _side * _passengers);
}

StateId
MultiPassengerTaxi::cornerCell(int corner) const
{
    const StateId last = _side - 1;
    switch (corner) {
      case 0:
        return 0;
      case 1:
        return last; // top-right
      case 2:
        return last * _side; // bottom-left
      case 3:
        return last * _side + last; // bottom-right
      default:
        SWIFTRL_PANIC("invalid corner ", corner);
    }
}

StateId
MultiPassengerTaxi::sourceCell(int p) const
{
    SWIFTRL_ASSERT(p >= 0 && p < _passengers, "passenger ", p,
                   " out of range");
    return cornerCell(_srcCorner[static_cast<std::size_t>(p)]);
}

StateId
MultiPassengerTaxi::destinationCell(int p) const
{
    SWIFTRL_ASSERT(p >= 0 && p < _passengers, "passenger ", p,
                   " out of range");
    return cornerCell(_dstCorner[static_cast<std::size_t>(p)]);
}

StateId
MultiPassengerTaxi::encode() const
{
    // taxiCell * 3^P + sum_p status_p * 3^p, little-endian trits.
    std::int64_t code = _taxi;
    for (int p = _passengers - 1; p >= 0; --p)
        code = code * 3 + _status[static_cast<std::size_t>(p)];
    SWIFTRL_ASSERT(code >= 0 && code < _numStates,
                   "encoded taxi state out of range");
    return static_cast<StateId>(code);
}

StateId
MultiPassengerTaxi::currentState() const
{
    return encode();
}

StateId
MultiPassengerTaxi::reset(common::XorShift128 &rng)
{
    _taxi = static_cast<StateId>(rng.nextBounded(
        static_cast<std::uint32_t>(_side) *
        static_cast<std::uint32_t>(_side)));
    std::fill(_status.begin(), _status.end(), Waiting);
    _steps = 0;
    _episodeDone = false;
    return encode();
}

StepResult
MultiPassengerTaxi::step(ActionId action, common::XorShift128 &rng)
{
    (void)rng; // deterministic dynamics; signature kept uniform
    SWIFTRL_ASSERT(!_episodeDone,
                   "step() on a finished episode; call reset()");
    SWIFTRL_ASSERT(action >= 0 && action < kActions,
                   "invalid action ", action);

    StepResult result;
    result.reward = -1.0f;

    if (action <= Up) {
        StateId row = _taxi / _side;
        StateId col = _taxi % _side;
        switch (action) {
          case Left:
            col = col > 0 ? col - 1 : 0;
            break;
          case Down:
            row = row < _side - 1 ? row + 1 : _side - 1;
            break;
          case Right:
            col = col < _side - 1 ? col + 1 : _side - 1;
            break;
          case Up:
            row = row > 0 ? row - 1 : 0;
            break;
          default:
            break;
        }
        _taxi = row * _side + col;
    } else if (action == Pickup) {
        int boarded = -1;
        for (int p = 0; p < _passengers; ++p) {
            const auto i = static_cast<std::size_t>(p);
            if (_status[i] == Waiting && sourceCell(p) == _taxi) {
                boarded = p;
                break;
            }
        }
        if (boarded >= 0)
            _status[static_cast<std::size_t>(boarded)] = InTaxi;
        else
            result.reward = -10.0f;
    } else { // Dropoff
        int delivered = -1;
        for (int p = 0; p < _passengers; ++p) {
            const auto i = static_cast<std::size_t>(p);
            if (_status[i] == InTaxi && destinationCell(p) == _taxi) {
                delivered = p;
                break;
            }
        }
        if (delivered >= 0) {
            _status[static_cast<std::size_t>(delivered)] = Delivered;
            result.reward = 20.0f;
        } else {
            result.reward = -10.0f;
        }
    }

    ++_steps;
    result.nextState = encode();
    result.terminated =
        std::all_of(_status.begin(), _status.end(),
                    [](int s) { return s == Delivered; });
    result.truncated = !result.terminated && _steps >= maxEpisodeSteps();
    _episodeDone = result.done();
    return result;
}

} // namespace swiftrl::rlenv
