/**
 * @file
 * CliffWalking: the classic 4x12 tabular benchmark (Sutton & Barto
 * Example 6.6; Gym CliffWalking-v0). Not part of SwiftRL's
 * evaluation, but a standard third environment for a tabular-RL
 * library — and the canonical setting where Q-learning's and SARSA's
 * learned policies *differ* (Q-learning walks the cliff edge, SARSA
 * detours), which the integration tests exercise.
 *
 * The agent starts at the bottom-left, the goal is bottom-right, and
 * the cells between them are a cliff: stepping in costs -100 and
 * teleports the agent back to the start (no termination). Every step
 * costs -1; reaching the goal terminates.
 */

#ifndef SWIFTRL_RLENV_CLIFF_WALKING_HH
#define SWIFTRL_RLENV_CLIFF_WALKING_HH

#include <string>

#include "rlenv/environment.hh"

namespace swiftrl::rlenv {

/** CliffWalking (Discrete(48) states, Discrete(4) actions). */
class CliffWalking : public Environment
{
  public:
    /** Action encoding, identical to Gym. */
    enum Action : ActionId { Up = 0, Right = 1, Down = 2, Left = 3 };

    CliffWalking() = default;

    std::string name() const override { return "cliffwalking"; }
    StateId numStates() const override { return kStates; }
    ActionId numActions() const override { return kActions; }
    int maxEpisodeSteps() const override { return 200; }

    StateId reset(common::XorShift128 &rng) override;
    StepResult step(ActionId action, common::XorShift128 &rng) override;
    StateId currentState() const override { return _state; }

    /** True when @p state is a cliff cell. */
    static bool isCliff(StateId state);

    /** Grid dimensions. */
    static constexpr StateId kRows = 4;
    static constexpr StateId kCols = 12;
    static constexpr StateId kStates = kRows * kCols;
    static constexpr ActionId kActions = 4;

    /** Start and goal cells (bottom row corners). */
    static constexpr StateId kStart = (kRows - 1) * kCols;
    static constexpr StateId kGoal = kRows * kCols - 1;

  private:
    StateId _state = kStart;
    int _steps = 0;
    bool _episodeDone = true;
};

} // namespace swiftrl::rlenv

#endif // SWIFTRL_RLENV_CLIFF_WALKING_HH
