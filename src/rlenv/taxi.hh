/**
 * @file
 * Taxi: the 5x5 grid-world from OpenAI Gym (Taxi-v3), the larger of
 * SwiftRL's two evaluation environments. The taxi navigates to a
 * passenger at one of four landmarks, picks them up, and drops them at
 * a destination landmark. Discrete(500) states — 25 taxi positions x 5
 * passenger locations (4 landmarks + in-taxi) x 4 destinations — and
 * Discrete(6) actions. Rewards: -1 per step, +20 for a successful
 * dropoff, -10 for illegal pickup/dropoff attempts.
 */

#ifndef SWIFTRL_RLENV_TAXI_HH
#define SWIFTRL_RLENV_TAXI_HH

#include <array>
#include <string>
#include <utility>

#include "rlenv/environment.hh"

namespace swiftrl::rlenv {

/** Taxi-v3 (Discrete(500) states, Discrete(6) actions). */
class Taxi : public Environment
{
  public:
    /** Action encoding, identical to Gym. */
    enum Action : ActionId
    {
        South = 0,
        North = 1,
        East = 2,
        West = 3,
        Pickup = 4,
        Dropoff = 5,
    };

    Taxi() = default;

    std::string name() const override { return "taxi"; }
    StateId numStates() const override { return kStates; }
    ActionId numActions() const override { return kActions; }
    int maxEpisodeSteps() const override { return 200; }

    StateId reset(common::XorShift128 &rng) override;
    StepResult step(ActionId action, common::XorShift128 &rng) override;
    StateId currentState() const override { return _state; }

    /** Pack (row, col, passenger, destination) into a state id. */
    static StateId encode(int row, int col, int passenger,
                          int destination);

    /** Unpack a state id; inverse of encode. */
    static void decode(StateId state, int &row, int &col,
                       int &passenger, int &destination);

    /** Landmark coordinates: R, G, Y, B. */
    static constexpr std::array<std::pair<int, int>, 4> kLandmarks = {{
        {0, 0}, {0, 4}, {4, 0}, {4, 3},
    }};

    /** True when a wall blocks eastward motion out of (row, col). */
    static bool eastBlocked(int row, int col);

    /** Grid side length. */
    static constexpr int kSide = 5;

    /** Passenger-in-taxi marker for the passenger index. */
    static constexpr int kInTaxi = 4;

    /** Number of states. */
    static constexpr StateId kStates = 500;

    /** Number of actions. */
    static constexpr ActionId kActions = 6;

  private:
    StateId _state = 0;
    int _steps = 0;
    bool _episodeDone = true;
};

} // namespace swiftrl::rlenv

#endif // SWIFTRL_RLENV_TAXI_HH
