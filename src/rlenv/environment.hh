/**
 * @file
 * Abstract episodic environment interface, mirroring the OpenAI Gym
 * discrete-environment contract (reset/step, Discrete observation and
 * action spaces, termination vs. time-limit truncation).
 */

#ifndef SWIFTRL_RLENV_ENVIRONMENT_HH
#define SWIFTRL_RLENV_ENVIRONMENT_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"

namespace swiftrl::rlenv {

/** Discrete state/action index type. */
using StateId = std::int32_t;

/** Discrete action index type. */
using ActionId = std::int32_t;

/** Outcome of one environment step. */
struct StepResult
{
    /** State observed after the transition. */
    StateId nextState = 0;

    /** Reward emitted by the transition. */
    float reward = 0.0f;

    /** Episode ended by reaching a terminal state. */
    bool terminated = false;

    /** Episode ended by hitting the step limit (Gym "truncated"). */
    bool truncated = false;

    /** True when the episode is over for either reason. */
    bool done() const { return terminated || truncated; }
};

/**
 * An episodic MDP with Discrete(numStates) observations and
 * Discrete(numActions) actions. Stochasticity is injected through the
 * caller-owned RNG so rollouts are reproducible and parallelisable.
 */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Environment name (registry key). */
    virtual std::string name() const = 0;

    /** Size of the Discrete observation space. */
    virtual StateId numStates() const = 0;

    /** Size of the Discrete action space. */
    virtual ActionId numActions() const = 0;

    /** Gym TimeLimit: steps after which an episode truncates. */
    virtual int maxEpisodeSteps() const = 0;

    /** Begin a new episode; returns the initial state. */
    virtual StateId reset(common::XorShift128 &rng) = 0;

    /**
     * Apply @p action from the current state.
     * Panics if called on a finished episode (call reset first).
     */
    virtual StepResult step(ActionId action,
                            common::XorShift128 &rng) = 0;

    /** State the environment is currently in. */
    virtual StateId currentState() const = 0;
};

} // namespace swiftrl::rlenv

#endif // SWIFTRL_RLENV_ENVIRONMENT_HH
