/**
 * @file
 * Procedurally generated environment family for state-space scaling
 * studies. The paper's environments stop at Taxi's 500 states; these
 * two generalise the same mechanics to arbitrary grid sides so the
 * sharded Q-table layer can be driven at 10^6-10^8 states without
 * storing a map — every tile/landmark query is recomputed from a
 * seeded hash, so an environment instance is O(1) memory regardless
 * of state count.
 *
 * Specs (parsed by rlenv::tryMakeEnvironment):
 *   "lake:<side>"            slippery side x side procedural lake
 *   "lake:<side>:det"        deterministic variant
 *   "mptaxi:<side>x<P>"      side x side taxi with P passengers
 */

#ifndef SWIFTRL_RLENV_PROCGEN_HH
#define SWIFTRL_RLENV_PROCGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rlenv/environment.hh"

namespace swiftrl::rlenv {

/**
 * N x N FrozenLake generalisation. Tiles are drawn from a seeded
 * hash: roughly one cell in eight is a hole, except that the top row
 * and the rightmost column are always frozen — so the path
 * right-along-the-top then down-the-right-edge always exists and
 * every instance is solvable by construction. Start is the top-left
 * corner, goal the bottom-right; holes terminate with zero reward,
 * the goal pays 1. Slippery dynamics are Gym's is_slippery=True
 * (1/3 intended direction, 1/3 each perpendicular).
 */
class ProceduralLake : public Environment
{
  public:
    /** Action encoding, identical to FrozenLake/Gym. */
    enum Action : ActionId { Left = 0, Down = 1, Right = 2, Up = 3 };

    /**
     * @param side Grid side, in [2, kMaxSide] so side^2 fits StateId.
     * @param slippery Gym's is_slippery.
     * @param seed Map-generation seed (tile layout only; step
     *        stochasticity comes from the caller's RNG).
     */
    explicit ProceduralLake(StateId side, bool slippery = true,
                            std::uint64_t seed = kDefaultMapSeed);

    std::string name() const override;
    StateId numStates() const override { return _side * _side; }
    ActionId numActions() const override { return kActions; }
    int maxEpisodeSteps() const override;

    StateId reset(common::XorShift128 &rng) override;
    StepResult step(ActionId action, common::XorShift128 &rng) override;
    StateId currentState() const override { return _state; }

    /** Tile character ('S','F','H','G') at a state. */
    char tileAt(StateId state) const;

    /** Grid side length. */
    StateId side() const { return _side; }

    /** Largest legal side: floor(sqrt(INT32_MAX)). */
    static constexpr StateId kMaxSide = 46340;

    /** Number of actions. */
    static constexpr ActionId kActions = 4;

    /** Default map seed (spec-addressable maps are reproducible). */
    static constexpr std::uint64_t kDefaultMapSeed = 0x5eed1a4eULL;

  private:
    StateId moveFrom(StateId state, ActionId direction) const;

    StateId _side;
    bool _slippery;
    std::uint64_t _seed;
    StateId _state = 0;
    int _steps = 0;
    bool _episodeDone = true;
};

/**
 * Multi-passenger Taxi generalisation on a side x side grid with P
 * passengers. The four landmarks sit at the grid corners; each
 * passenger's source and (distinct) destination corner are drawn
 * from the map seed. A passenger is in one of three statuses —
 * waiting at its source, in the taxi, or delivered — so the state is
 * taxiCell * 3^P + sum_p status_p * 3^p, and the state count is
 * side^2 * 3^P (validated to fit StateId at construction).
 *
 * Actions are Taxi's six: move (reward -1, deterministic, clamped at
 * walls), Pickup (boards the lowest-indexed waiting passenger at the
 * taxi's cell, else -10), Dropoff (delivers the lowest-indexed
 * carried passenger whose destination is the taxi's cell for +20,
 * else -10). The episode terminates when every passenger is
 * delivered.
 */
class MultiPassengerTaxi : public Environment
{
  public:
    enum Action : ActionId {
        Left = 0,
        Down = 1,
        Right = 2,
        Up = 3,
        Pickup = 4,
        Dropoff = 5,
    };

    /** Passenger status trit. */
    enum Status : int { Waiting = 0, InTaxi = 1, Delivered = 2 };

    /**
     * @param side Grid side, >= 2.
     * @param passengers Passenger count P >= 1; side^2 * 3^P must
     *        fit StateId (checked, fatal otherwise — embedder-facing
     *        callers precheck via tryMakeEnvironment).
     * @param seed Landmark-assignment seed.
     */
    MultiPassengerTaxi(StateId side, int passengers,
                       std::uint64_t seed = kDefaultMapSeed);

    std::string name() const override;
    StateId numStates() const override { return _numStates; }
    ActionId numActions() const override { return kActions; }
    int maxEpisodeSteps() const override;

    StateId reset(common::XorShift128 &rng) override;
    StepResult step(ActionId action, common::XorShift128 &rng) override;
    StateId currentState() const override;

    /** Source corner cell of passenger @p p. */
    StateId sourceCell(int p) const;

    /** Destination corner cell of passenger @p p. */
    StateId destinationCell(int p) const;

    int passengers() const { return _passengers; }
    StateId side() const { return _side; }

    /** Number of actions. */
    static constexpr ActionId kActions = 6;

    /** Default map seed. */
    static constexpr std::uint64_t kDefaultMapSeed = 0x7a111c0deULL;

  private:
    StateId encode() const;
    StateId cornerCell(int corner) const;

    StateId _side;
    int _passengers;
    std::uint64_t _seed;
    StateId _numStates;
    std::vector<int> _srcCorner;
    std::vector<int> _dstCorner;

    StateId _taxi = 0;
    std::vector<int> _status;
    int _steps = 0;
    bool _episodeDone = true;
};

} // namespace swiftrl::rlenv

#endif // SWIFTRL_RLENV_PROCGEN_HH
