#include "rlenv/frozen_lake.hh"

#include "common/logging.hh"

namespace swiftrl::rlenv {

FrozenLake::FrozenLake(bool slippery) : _slippery(slippery) {}

std::string
FrozenLake::name() const
{
    return _slippery ? "frozenlake" : "frozenlake-det";
}

char
FrozenLake::tileAt(StateId state) const
{
    SWIFTRL_ASSERT(state >= 0 && state < kStates,
                   "state ", state, " out of range");
    return kMap[static_cast<std::size_t>(state)];
}

bool
FrozenLake::isTerminal(StateId state) const
{
    const char t = tileAt(state);
    return t == 'H' || t == 'G';
}

StateId
FrozenLake::moveFrom(StateId state, ActionId direction)
{
    StateId row = state / kSide;
    StateId col = state % kSide;
    switch (direction) {
      case Left:
        col = col > 0 ? col - 1 : 0;
        break;
      case Down:
        row = row < kSide - 1 ? row + 1 : kSide - 1;
        break;
      case Right:
        col = col < kSide - 1 ? col + 1 : kSide - 1;
        break;
      case Up:
        row = row > 0 ? row - 1 : 0;
        break;
      default:
        SWIFTRL_PANIC("invalid FrozenLake action ", direction);
    }
    return row * kSide + col;
}

StateId
FrozenLake::reset(common::XorShift128 &rng)
{
    (void)rng; // fixed start tile; signature kept uniform
    _state = 0;
    _steps = 0;
    _episodeDone = false;
    return _state;
}

StepResult
FrozenLake::step(ActionId action, common::XorShift128 &rng)
{
    SWIFTRL_ASSERT(!_episodeDone,
                   "step() on a finished episode; call reset()");
    SWIFTRL_ASSERT(action >= 0 && action < kActions,
                   "invalid action ", action);

    ActionId direction = action;
    if (_slippery) {
        // Gym slides uniformly among {a-1, a, a+1} (mod 4): intended
        // direction or either perpendicular, 1/3 each.
        const auto pick = static_cast<ActionId>(rng.nextBounded(3));
        direction = static_cast<ActionId>(
            (action + (pick - 1) + kActions) % kActions);
    }

    _state = moveFrom(_state, direction);
    ++_steps;

    StepResult result;
    result.nextState = _state;
    const char tile = tileAt(_state);
    result.reward = tile == 'G' ? 1.0f : 0.0f;
    result.terminated = tile == 'G' || tile == 'H';
    result.truncated = !result.terminated && _steps >= maxEpisodeSteps();
    _episodeDone = result.done();
    return result;
}

} // namespace swiftrl::rlenv
