#include "rlenv/taxi.hh"

#include "common/logging.hh"

namespace swiftrl::rlenv {

StateId
Taxi::encode(int row, int col, int passenger, int destination)
{
    SWIFTRL_ASSERT(row >= 0 && row < kSide, "row out of range");
    SWIFTRL_ASSERT(col >= 0 && col < kSide, "col out of range");
    SWIFTRL_ASSERT(passenger >= 0 && passenger <= kInTaxi,
                   "passenger index out of range");
    SWIFTRL_ASSERT(destination >= 0 && destination < 4,
                   "destination index out of range");
    return static_cast<StateId>(
        ((row * kSide + col) * 5 + passenger) * 4 + destination);
}

void
Taxi::decode(StateId state, int &row, int &col, int &passenger,
             int &destination)
{
    SWIFTRL_ASSERT(state >= 0 && state < kStates,
                   "state ", state, " out of range");
    destination = state % 4;
    state /= 4;
    passenger = state % 5;
    state /= 5;
    col = state % kSide;
    row = state / kSide;
}

bool
Taxi::eastBlocked(int row, int col)
{
    // Walls of the Gym map:
    //   +---------+
    //   |R: | : :G|
    //   | : | : : |
    //   | : : : : |
    //   | | : | : |
    //   |Y| : |B: |
    //   +---------+
    if ((row == 0 || row == 1) && col == 1)
        return true;
    if ((row == 3 || row == 4) && (col == 0 || col == 2))
        return true;
    return false;
}

StateId
Taxi::reset(common::XorShift128 &rng)
{
    // Gym: taxi anywhere, passenger at a landmark (never in the taxi),
    // destination a different landmark.
    const int row = static_cast<int>(rng.nextBounded(kSide));
    const int col = static_cast<int>(rng.nextBounded(kSide));
    const int passenger = static_cast<int>(rng.nextBounded(4));
    int destination = static_cast<int>(rng.nextBounded(3));
    if (destination >= passenger)
        ++destination;
    _state = encode(row, col, passenger, destination);
    _steps = 0;
    _episodeDone = false;
    return _state;
}

StepResult
Taxi::step(ActionId action, common::XorShift128 &rng)
{
    (void)rng; // taxi dynamics are deterministic
    SWIFTRL_ASSERT(!_episodeDone,
                   "step() on a finished episode; call reset()");
    SWIFTRL_ASSERT(action >= 0 && action < kActions,
                   "invalid action ", action);

    int row, col, passenger, destination;
    decode(_state, row, col, passenger, destination);

    StepResult result;
    result.reward = -1.0f;

    switch (action) {
      case South:
        row = row < kSide - 1 ? row + 1 : row;
        break;
      case North:
        row = row > 0 ? row - 1 : row;
        break;
      case East:
        if (!eastBlocked(row, col))
            col = col < kSide - 1 ? col + 1 : col;
        break;
      case West:
        if (col > 0 && !eastBlocked(row, col - 1))
            col = col - 1;
        break;
      case Pickup:
        if (passenger < kInTaxi &&
            kLandmarks[static_cast<std::size_t>(passenger)] ==
                std::pair<int, int>{row, col}) {
            passenger = kInTaxi;
        } else {
            result.reward = -10.0f;
        }
        break;
      case Dropoff: {
        const std::pair<int, int> here{row, col};
        if (passenger == kInTaxi &&
            here ==
                kLandmarks[static_cast<std::size_t>(destination)]) {
            passenger = destination;
            result.reward = 20.0f;
            result.terminated = true;
        } else if (passenger == kInTaxi) {
            // Dropping at a wrong landmark strands the passenger
            // there (regular -1); elsewhere it is illegal (-10).
            bool at_landmark = false;
            for (std::size_t i = 0; i < kLandmarks.size(); ++i) {
                if (kLandmarks[i] == here) {
                    passenger = static_cast<int>(i);
                    at_landmark = true;
                    break;
                }
            }
            if (!at_landmark)
                result.reward = -10.0f;
        } else {
            result.reward = -10.0f;
        }
        break;
      }
      default:
        SWIFTRL_PANIC("unhandled taxi action ", action);
    }

    _state = encode(row, col, passenger, destination);
    ++_steps;
    result.nextState = _state;
    result.truncated =
        !result.terminated && _steps >= maxEpisodeSteps();
    _episodeDone = result.done();
    return result;
}

} // namespace swiftrl::rlenv
