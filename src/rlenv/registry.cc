#include "rlenv/registry.hh"

#include "common/logging.hh"
#include "rlenv/cliff_walking.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/taxi.hh"

namespace swiftrl::rlenv {

std::unique_ptr<Environment>
makeEnvironment(const std::string &name)
{
    if (name == "frozenlake")
        return std::make_unique<FrozenLake>(true);
    if (name == "frozenlake-det")
        return std::make_unique<FrozenLake>(false);
    if (name == "taxi")
        return std::make_unique<Taxi>();
    if (name == "cliffwalking")
        return std::make_unique<CliffWalking>();
    SWIFTRL_FATAL("unknown environment '", name, "'; known: frozenlake, ",
                  "frozenlake-det, taxi, cliffwalking");
}

std::vector<std::string>
environmentNames()
{
    return {"frozenlake", "frozenlake-det", "taxi", "cliffwalking"};
}

} // namespace swiftrl::rlenv
