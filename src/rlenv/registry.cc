#include "rlenv/registry.hh"

#include <cstdint>

#include "common/logging.hh"
#include "rlenv/cliff_walking.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/procgen.hh"
#include "rlenv/taxi.hh"

namespace swiftrl::rlenv {

namespace {

/**
 * Parse a decimal integer in [lo, hi] from @p text; false on any
 * non-digit character, empty input, or out-of-range value.
 */
bool
parseBounded(const std::string &text, long lo, long hi, long *out)
{
    if (text.empty() || text.size() > 10)
        return false;
    long value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + (c - '0');
        if (value > hi)
            return false;
    }
    if (value < lo)
        return false;
    *out = value;
    return true;
}

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

} // namespace

std::unique_ptr<Environment>
tryMakeEnvironment(const std::string &spec, std::string *error)
{
    if (spec == "frozenlake")
        return std::make_unique<FrozenLake>(true);
    if (spec == "frozenlake-det")
        return std::make_unique<FrozenLake>(false);
    if (spec == "taxi")
        return std::make_unique<Taxi>();
    if (spec == "cliffwalking")
        return std::make_unique<CliffWalking>();

    // "lake:<side>" / "lake:<side>:det" — procedural slippery lake.
    if (spec.rfind("lake:", 0) == 0) {
        std::string body = spec.substr(5);
        bool slippery = true;
        const std::size_t colon = body.find(':');
        if (colon != std::string::npos) {
            if (body.substr(colon + 1) != "det") {
                setError(error, "bad lake spec '" + spec +
                                    "'; expected lake:<side>[:det]");
                return nullptr;
            }
            slippery = false;
            body = body.substr(0, colon);
        }
        long side = 0;
        if (!parseBounded(body, 2, ProceduralLake::kMaxSide, &side)) {
            setError(error,
                     "bad lake side in '" + spec + "'; expected an "
                     "integer in [2, " +
                         std::to_string(ProceduralLake::kMaxSide) +
                         "]");
            return nullptr;
        }
        return std::make_unique<ProceduralLake>(
            static_cast<StateId>(side), slippery);
    }

    // "mptaxi:<side>x<passengers>" — multi-passenger taxi.
    if (spec.rfind("mptaxi:", 0) == 0) {
        const std::string body = spec.substr(7);
        const std::size_t cross = body.find('x');
        long side = 0, passengers = 0;
        if (cross == std::string::npos ||
            !parseBounded(body.substr(0, cross), 2, 46340, &side) ||
            !parseBounded(body.substr(cross + 1), 1, 19,
                          &passengers)) {
            setError(error, "bad mptaxi spec '" + spec +
                                "'; expected mptaxi:<side>x<P> with "
                                "side >= 2 and P >= 1");
            return nullptr;
        }
        // side^2 * 3^P must fit a 32-bit state id; check before the
        // constructor so embedder input never reaches its assert.
        std::int64_t states =
            static_cast<std::int64_t>(side) * side;
        for (long p = 0; p < passengers && states <= INT32_MAX; ++p)
            states *= 3;
        if (states > INT32_MAX) {
            setError(error,
                     "mptaxi spec '" + spec + "' needs " +
                         std::to_string(side) + "^2 * 3^" +
                         std::to_string(passengers) +
                         " states, which overflows 32-bit state ids");
            return nullptr;
        }
        return std::make_unique<MultiPassengerTaxi>(
            static_cast<StateId>(side),
            static_cast<int>(passengers));
    }

    setError(error, "unknown environment '" + spec +
                        "'; known: frozenlake, frozenlake-det, taxi, "
                        "cliffwalking, lake:<side>[:det], "
                        "mptaxi:<side>x<P>");
    return nullptr;
}

std::unique_ptr<Environment>
makeEnvironment(const std::string &name)
{
    std::string error;
    auto env = tryMakeEnvironment(name, &error);
    if (env == nullptr)
        SWIFTRL_FATAL(error);
    return env;
}

std::vector<std::string>
environmentNames()
{
    return {"frozenlake", "frozenlake-det", "taxi", "cliffwalking"};
}

} // namespace swiftrl::rlenv
