#include "rlenv/cliff_walking.hh"

#include "common/logging.hh"

namespace swiftrl::rlenv {

bool
CliffWalking::isCliff(StateId state)
{
    const StateId row = state / kCols;
    const StateId col = state % kCols;
    return row == kRows - 1 && col > 0 && col < kCols - 1;
}

StateId
CliffWalking::reset(common::XorShift128 &rng)
{
    (void)rng; // fixed start cell
    _state = kStart;
    _steps = 0;
    _episodeDone = false;
    return _state;
}

StepResult
CliffWalking::step(ActionId action, common::XorShift128 &rng)
{
    (void)rng; // deterministic dynamics
    SWIFTRL_ASSERT(!_episodeDone,
                   "step() on a finished episode; call reset()");
    SWIFTRL_ASSERT(action >= 0 && action < kActions,
                   "invalid action ", action);

    StateId row = _state / kCols;
    StateId col = _state % kCols;
    switch (action) {
      case Up:
        row = row > 0 ? row - 1 : 0;
        break;
      case Right:
        col = col < kCols - 1 ? col + 1 : col;
        break;
      case Down:
        row = row < kRows - 1 ? row + 1 : row;
        break;
      case Left:
        col = col > 0 ? col - 1 : 0;
        break;
      default:
        SWIFTRL_PANIC("unhandled cliff-walking action ", action);
    }

    StepResult result;
    const StateId landed = row * kCols + col;
    if (isCliff(landed)) {
        // Falling off costs -100 and teleports back to the start;
        // the episode continues (Gym semantics).
        result.reward = -100.0f;
        _state = kStart;
    } else {
        result.reward = -1.0f;
        _state = landed;
        result.terminated = landed == kGoal;
    }
    ++_steps;
    result.nextState = _state;
    result.truncated =
        !result.terminated && _steps >= maxEpisodeSteps();
    _episodeDone = result.done();
    return result;
}

} // namespace swiftrl::rlenv
