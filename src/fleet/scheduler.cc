#include "fleet/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <queue>

#include "common/logging.hh"
#include "pimsim/pim_system.hh"
#include "pimsim/rank_pool.hh"
#include "rlcore/dataset.hh"
#include "rlenv/registry.hh"
#include "swiftrl/session.hh"
#include "telemetry/metric_registry.hh"
#include "telemetry/tracing.hh"

namespace swiftrl::fleet {

namespace {

/**
 * Serialized SWRLCK01 payload size of @p ck: the fixed identity /
 * progress / engine fields (~150 bytes plus framing) and the
 * variable-length arrays. Used to price checkpoint/restore transfers;
 * kept in sync with trySaveCheckpoint's field list by
 * tests/test_fleet.cc's accounting cases being deterministic, not by
 * byte-exactness (the cost model needs magnitude, not parity).
 */
std::size_t
checkpointBytes(const SessionCheckpoint &ck)
{
    std::size_t bytes = 256; // fixed fields + magic + checksum
    bytes += ck.roundDeltas.size() * 4;
    bytes += ck.aggregated.size() * 4;
    bytes += ck.lcgStates.size() * 4;
    bytes += ck.deadDpus.size() * 8;
    bytes += ck.dpuCycles.size() * 8;
    return bytes;
}

/** Fleet-clock seconds rendered for the dispatch log (%.9g is
 *  shortest-ish and deterministic across libcs for these values). */
std::string
renderSec(double t)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", t);
    return buf;
}

/** One job's live scheduling state. */
struct Job
{
    enum class State
    {
        Pending, ///< before arrivalSec
        Queued,  ///< waiting for a grant
        Running, ///< holds ranks; a slice is in flight
        Finished,
    };

    const JobSpec *spec = nullptr;
    State state = State::Pending;

    /** Offline dataset, collected at first dispatch and kept until
     *  the job finishes (restores re-pack from it). */
    std::optional<rlcore::Dataset> data;
    rlcore::StateId numStates = 0;
    rlcore::ActionId numActions = 0;

    /** Machine + session while Running (torn down on preemption). */
    std::unique_ptr<pimsim::PimSystem> system;
    std::unique_ptr<TrainerSession> session;

    /** Held checkpoint while preempted. */
    std::optional<SessionCheckpoint> checkpoint;

    /** Physical ranks currently leased. */
    std::vector<std::size_t> granted;

    /** Did the in-flight slice exhaust the episode budget? */
    bool sliceFinished = false;

    double enqueueSec = 0.0;

    /** Rank-seconds this job has consumed (unweighted): the
     *  within-tenant tie-break, so equal-standing jobs round-robin
     *  instead of the just-preempted job re-winning its ranks. */
    double consumedRankSec = 0.0;

    /** Causal spans (fleet clock): the job's lifetime (arrival to
     *  finish) and the currently-held grant. Observation-only. */
    telemetry::Span span;
    telemetry::Span grantSpan;

    JobOutcome outcome;
};

struct Event
{
    double time = 0.0;
    std::uint64_t seq = 0;
    enum class Kind
    {
        Arrival,
        SliceEnd,
        PreemptDone,
    } kind = Kind::Arrival;
    std::size_t job = 0;
};

struct EventAfter
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.seq > b.seq;
    }
};

/** The whole run's mutable state, so helpers stay small. */
struct RunState
{
    const FleetConfig &config;
    pimsim::RankPool pool;
    std::vector<Job> jobs;
    std::priority_queue<Event, std::vector<Event>, EventAfter> events;
    std::uint64_t nextSeq = 0;
    /** Per-tenant consumed rank-seconds / weight. */
    std::map<std::string, double> virtualTime;
    double clock = 0.0;
    std::vector<std::string> log;

    /** Root "fleet.run" span over the whole schedule (fleet clock). */
    telemetry::Span runSpan;

    explicit RunState(const FleetConfig &cfg)
        : config(cfg), pool(cfg.totalRanks)
    {
    }

    void
    push(double time, Event::Kind kind, std::size_t job)
    {
        events.push(Event{time, nextSeq++, kind, job});
    }

    void
    logLine(const std::string &what, const Job &job,
            const std::string &extra = "")
    {
        log.push_back("t=" + renderSec(clock) + " " + what +
                      " job=" + job.spec->id +
                      " tenant=" + job.spec->tenant + extra);
    }
};

SessionConfig
sessionConfigFor(const JobSpec &spec)
{
    SessionConfig cfg;
    cfg.workload = spec.workload;
    cfg.hyper = spec.hyper;
    cfg.tau = spec.tau;
    cfg.tasklets = spec.tasklets;
    return cfg;
}

/** ceil(ranks / granted): the gang time-multiplexing factor. */
double
dilationFor(const JobSpec &spec, std::size_t granted)
{
    return static_cast<double>((spec.ranks + granted - 1) / granted);
}

/**
 * Run one quantum of rounds on the job's live session (plus the
 * final retrieval if the budget ran out) and schedule the SliceEnd.
 * @p start is the fleet clock at which the slice begins (grant time
 * plus any dispatch/restore cost).
 */
void
runSlice(RunState &rs, std::size_t ji, double start)
{
    Job &job = rs.jobs[ji];
    TrainerSession &session = *job.session;
    const double t0 = session.stream().now();
    int rounds = 0;
    while (rounds < rs.config.quantumRounds &&
           session.episodesRemaining() > 0) {
        session.step();
        ++rounds;
    }
    job.sliceFinished = session.episodesRemaining() == 0;
    if (job.sliceFinished)
        session.finishRetrieval();
    const double modelled = session.stream().now() - t0;
    const double fleetDur =
        modelled * dilationFor(*job.spec, job.granted.size());
    const double overhead = start - rs.clock;
    rs.pool.charge(job.granted, overhead + fleetDur);
    job.outcome.occupiedSec += overhead + fleetDur;
    const double rankSec =
        static_cast<double>(job.granted.size()) * (overhead + fleetDur);
    job.consumedRankSec += rankSec;
    rs.virtualTime[job.spec->tenant] +=
        rankSec / rs.config.weightFor(job.spec->tenant);
    rs.push(start + fleetDur, Event::Kind::SliceEnd, ji);
}

/** Lease ranks, (re)build machine + session, start the first slice. */
void
grant(RunState &rs, std::size_t ji, std::size_t want)
{
    Job &job = rs.jobs[ji];
    const JobSpec &spec = *job.spec;
    job.granted = rs.pool.lease(want);
    SWIFTRL_ASSERT(!job.granted.empty(), "grant sized to free ranks");
    job.state = Job::State::Running;
    ++job.outcome.grants;
    job.outcome.queueWaitSec += rs.clock - job.enqueueSec;
    if (job.outcome.grants == 1)
        job.outcome.firstDispatchSec = rs.clock;
    job.outcome.minGrantRanks =
        job.outcome.minGrantRanks == 0
            ? want
            : std::min(job.outcome.minGrantRanks, want);

    // One span per grant on the fleet clock, the causal parent of the
    // session the grant hosts (the session's own spans tick the
    // modelled clock, so the link is parental, not containment).
    job.grantSpan = telemetry::tracer().begin(
        job.outcome.grants == 1 ? "fleet.grant" : "fleet.resume",
        "fleet", "fleet", rs.clock, job.span.id());
    job.grantSpan
        .attr("ranks", std::to_string(job.granted.size()) + "/" +
                           std::to_string(spec.ranks))
        .attr("first_rank", job.granted.front())
        .attr("tenant", spec.tenant);

    // The job's logical machine is always full width; the physical
    // grant only sets the time-multiplexing factor.
    pimsim::PimConfig pim;
    pim.numDpus = spec.ranks * rs.config.dpusPerRank;
    pim.hostThreads = rs.config.hostThreads;
    job.system = std::make_unique<pimsim::PimSystem>(pim);
    SessionConfig scfg = sessionConfigFor(spec);
    scfg.traceParent = job.grantSpan.id();
    job.session = std::make_unique<TrainerSession>(*job.system,
                                                   std::move(scfg));

    double cost = rs.config.dispatchOverheadSec;
    if (job.checkpoint) {
        cost += static_cast<double>(checkpointBytes(*job.checkpoint)) *
                rs.config.restoreSecPerByte;
        job.session->restoreOffline(*job.data, *job.checkpoint);
        job.checkpoint.reset();
    } else {
        if (!job.data) {
            auto env = rlenv::makeEnvironment(spec.env);
            job.numStates = env->numStates();
            job.numActions = env->numActions();
            job.data = rlcore::collectRandomDataset(
                *env, spec.transitions, spec.collectSeed);
        }
        job.session->beginOffline(*job.data, job.numStates,
                                  job.numActions);
    }
    rs.logLine(job.outcome.grants == 1 ? "grant" : "resume", job,
               " ranks=" + std::to_string(job.granted.size()) + "/" +
                   std::to_string(spec.ranks) + " first=" +
                   std::to_string(job.granted.front()));
    runSlice(rs, ji, rs.clock + cost);
}

/** Total order over queued jobs: weighted fair share, then
 *  priority, then arrival, then id. */
std::vector<std::size_t>
queuedInOrder(RunState &rs)
{
    std::vector<std::size_t> queued;
    for (std::size_t i = 0; i < rs.jobs.size(); ++i) {
        if (rs.jobs[i].state == Job::State::Queued)
            queued.push_back(i);
    }
    std::sort(queued.begin(), queued.end(),
              [&rs](std::size_t a, std::size_t b) {
                  const JobSpec &sa = *rs.jobs[a].spec;
                  const JobSpec &sb = *rs.jobs[b].spec;
                  const double va = rs.virtualTime[sa.tenant];
                  const double vb = rs.virtualTime[sb.tenant];
                  if (va != vb)
                      return va < vb;
                  if (sa.priority != sb.priority)
                      return sa.priority > sb.priority;
                  // Within a tenant and priority class, the job
                  // that has consumed the least runs first — a
                  // just-preempted job cannot re-win its ranks from
                  // a starving sibling.
                  const double ca = rs.jobs[a].consumedRankSec;
                  const double cb = rs.jobs[b].consumedRankSec;
                  if (ca != cb)
                      return ca < cb;
                  if (sa.arrivalSec != sb.arrivalSec)
                      return sa.arrivalSec < sb.arrivalSec;
                  return sa.id < sb.id;
              });
    return queued;
}

/** Hand free ranks to queued jobs in policy order (with backfill). */
void
dispatch(RunState &rs)
{
    for (const std::size_t ji : queuedInOrder(rs)) {
        const std::size_t free = rs.pool.freeRanks();
        if (free == 0)
            break;
        const JobSpec &spec = *rs.jobs[ji].spec;
        const std::size_t want = std::min(spec.ranks, free);
        if (want < spec.effectiveMinRanks())
            continue; // backfill: a smaller job may still fit
        grant(rs, ji, want);
    }
}

bool
anyQueued(const RunState &rs)
{
    for (const Job &job : rs.jobs) {
        if (job.state == Job::State::Queued)
            return true;
    }
    return false;
}

void
handleSliceEnd(RunState &rs, std::size_t ji)
{
    Job &job = rs.jobs[ji];
    if (job.sliceFinished) {
        job.outcome.finalQ = job.session->aggregated();
        job.outcome.commRounds = job.session->commRounds();
        job.outcome.modelledTrainSec = job.session->stream().now();
        job.outcome.finishSec = rs.clock;
        // Whole-run fault tallies, captured before the session (and
        // its timeline) is torn down.
        job.outcome.faultsDetected = job.session->faultsDetected();
        job.outcome.coresLost = job.session->coresLost();
        job.session.reset();
        job.system.reset();
        job.data.reset();
        rs.pool.release(job.granted);
        job.granted.clear();
        job.state = Job::State::Finished;
        rs.logLine("finish", job,
                   " rounds=" + std::to_string(job.outcome.commRounds));
        job.grantSpan.finish(rs.clock);
        job.span.attr("rounds", job.outcome.commRounds)
            .attr("preemptions", job.outcome.preemptions)
            .attr("faults", job.outcome.faultsDetected)
            .attr("cores_lost", job.outcome.coresLost);
        job.span.finish(rs.clock,
                        job.outcome.faultsDetected > 0 ? "retried"
                                                       : "ok");
        return;
    }
    if (!anyQueued(rs)) {
        // Nobody waiting: renew the grant in place, cost-free.
        runSlice(rs, ji, rs.clock);
        return;
    }
    // Preempt: checkpoint now (the session is quiescent at the round
    // boundary), hold the ranks for the modelled serialisation cost,
    // release at PreemptDone.
    job.session->pause();
    job.checkpoint = job.session->checkpoint();
    job.session.reset();
    job.system.reset();
    ++job.outcome.preemptions;
    const double cost =
        static_cast<double>(checkpointBytes(*job.checkpoint)) *
        rs.config.checkpointSecPerByte;
    rs.pool.charge(job.granted, cost);
    job.outcome.occupiedSec += cost;
    const double rankSec =
        static_cast<double>(job.granted.size()) * cost;
    job.consumedRankSec += rankSec;
    rs.virtualTime[job.spec->tenant] +=
        rankSec / rs.config.weightFor(job.spec->tenant);
    rs.logLine("preempt", job,
               " rounds=" +
                   std::to_string(job.checkpoint->commRounds));
    // Retrospective span over the checkpoint serialisation window;
    // the grant closes with it, outcome "preempted".
    auto preempt = telemetry::tracer().begin(
        "fleet.preempt", "fleet", "fleet", rs.clock, job.span.id());
    preempt.attr("rounds", job.checkpoint->commRounds)
        .attr("tenant", job.spec->tenant);
    preempt.finish(rs.clock + cost);
    job.grantSpan.finish(rs.clock + cost, "preempted");
    rs.push(rs.clock + cost, Event::Kind::PreemptDone, ji);
}

} // namespace

FleetScheduler::FleetScheduler(FleetConfig config)
    : _config(std::move(config))
{
    if (_config.totalRanks == 0)
        SWIFTRL_FATAL("a fleet needs at least one rank");
    if (_config.dpusPerRank == 0)
        SWIFTRL_FATAL("a rank needs at least one DPU core");
    if (_config.quantumRounds <= 0)
        SWIFTRL_FATAL("the scheduling quantum must be at least one "
                      "round");
    if (_config.checkpointSecPerByte < 0.0 ||
        _config.restoreSecPerByte < 0.0 ||
        _config.dispatchOverheadSec < 0.0)
        SWIFTRL_FATAL("fleet cost constants must be non-negative");
    for (const auto &[tenant, weight] : _config.tenantWeights) {
        if (!(weight > 0.0))
            SWIFTRL_FATAL("tenant \"", tenant,
                          "\" needs a positive fair-share weight");
    }
}

FleetResult
FleetScheduler::run(const std::vector<JobSpec> &jobs)
{
    if (jobs.empty())
        SWIFTRL_FATAL("a fleet run needs at least one job");
    RunState rs(_config);
    rs.runSpan =
        telemetry::tracer().begin("fleet.run", "fleet", "fleet", 0.0);
    rs.runSpan.attr("jobs", jobs.size())
        .attr("ranks", _config.totalRanks);
    rs.jobs.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobSpec &spec = jobs[i];
        if (spec.ranks > _config.totalRanks)
            SWIFTRL_FATAL("job \"", spec.id, "\" wants ", spec.ranks,
                          " ranks but the fleet has ",
                          _config.totalRanks);
        rs.jobs[i].spec = &spec;
        rs.jobs[i].outcome.id = spec.id;
        rs.jobs[i].outcome.tenant = spec.tenant;
        rs.jobs[i].outcome.arrivalSec = spec.arrivalSec;
        rs.virtualTime.emplace(spec.tenant, 0.0);
        rs.push(spec.arrivalSec, Event::Kind::Arrival, i);
    }

    while (!rs.events.empty()) {
        const Event e = rs.events.top();
        rs.events.pop();
        rs.clock = e.time;
        Job &job = rs.jobs[e.job];
        switch (e.kind) {
        case Event::Kind::Arrival:
            job.state = Job::State::Queued;
            job.enqueueSec = rs.clock;
            rs.logLine("arrive", job);
            // The job's lifetime span opens at admission so every
            // grant, session, engine command, and serve batch below
            // it can name it as an ancestor.
            job.span = telemetry::tracer().begin(
                "fleet.job", "fleet", "fleet", rs.clock,
                rs.runSpan.id());
            job.span.attr("job", job.spec->id)
                .attr("tenant", job.spec->tenant)
                .attr("ranks", job.spec->ranks);
            job.outcome.traceSpanId = job.span.id();
            break;
        case Event::Kind::SliceEnd:
            handleSliceEnd(rs, e.job);
            break;
        case Event::Kind::PreemptDone:
            rs.pool.release(job.granted);
            job.granted.clear();
            job.state = Job::State::Queued;
            job.enqueueSec = rs.clock;
            break;
        }
        dispatch(rs);
    }

    FleetResult result;
    result.dispatchLog = std::move(rs.log);
    result.jobs.reserve(rs.jobs.size());
    for (Job &job : rs.jobs) {
        SWIFTRL_ASSERT(job.state == Job::State::Finished,
                       "event loop drained with an unfinished job");
        result.makespanSec =
            std::max(result.makespanSec, job.outcome.finishSec);
        result.totalPreemptions += job.outcome.preemptions;
        result.jobs.push_back(std::move(job.outcome));
    }
    result.perRankBusySec.reserve(_config.totalRanks);
    for (std::size_t r = 0; r < _config.totalRanks; ++r)
        result.perRankBusySec.push_back(rs.pool.busySeconds(r));
    result.rankBusySeconds = rs.pool.totalBusySeconds();
    rs.runSpan.attr("preemptions", result.totalPreemptions);
    rs.runSpan.finish(result.makespanSec);

    if (_config.metrics) {
        auto &m = *_config.metrics;
        for (const JobOutcome &out : result.jobs) {
            const telemetry::Labels labels = {
                {"job", out.id}, {"tenant", out.tenant}};
            m.gauge("fleet_queue_wait_seconds", labels)
                .set(out.queueWaitSec);
            m.counter("fleet_preemptions_total", labels)
                .add(static_cast<std::uint64_t>(out.preemptions));
            m.counter("fleet_grants_total", labels)
                .add(static_cast<std::uint64_t>(out.grants));
            m.gauge("fleet_job_finish_seconds", labels)
                .set(out.finishSec);
            m.counter("fleet_job_faults_detected_total", labels)
                .add(static_cast<std::uint64_t>(out.faultsDetected));
            m.gauge("fleet_job_cores_lost", labels)
                .set(static_cast<double>(out.coresLost));
            m.counter("fleet_jobs_completed_total",
                      {{"tenant", out.tenant}})
                .add();
        }
        for (std::size_t r = 0; r < result.perRankBusySec.size();
             ++r) {
            m.gauge("fleet_rank_busy_seconds",
                    {{"rank", std::to_string(r)}})
                .set(result.perRankBusySec[r]);
        }
        m.gauge("fleet_makespan_seconds").set(result.makespanSec);
        m.gauge("fleet_rank_occupancy_ratio")
            .set(result.occupancy());
        m.gauge("fleet_jobs_per_hour").set(result.jobsPerHour());
    }
    return result;
}

PimTrainResult
FleetScheduler::runStandalone(const JobSpec &job,
                              const FleetConfig &config)
{
    pimsim::PimConfig pim;
    pim.numDpus = job.ranks * config.dpusPerRank;
    pim.hostThreads = config.hostThreads;
    pimsim::PimSystem system(pim);

    auto env = rlenv::makeEnvironment(job.env);
    const auto data = rlcore::collectRandomDataset(
        *env, job.transitions, job.collectSeed);

    PimTrainConfig cfg;
    cfg.workload = job.workload;
    cfg.hyper = job.hyper;
    cfg.tau = job.tau;
    cfg.tasklets = job.tasklets;
    PimTrainer trainer(system, cfg);
    return trainer.train(data, env->numStates(), env->numActions());
}

} // namespace swiftrl::fleet
