/**
 * @file
 * The multi-tenant fleet scheduler: many concurrent training jobs
 * time-sharing one pool of simulated DPU ranks.
 *
 * The scheduler is a discrete-event simulation in **fleet modelled
 * time**, the same modelled-seconds currency every command stream
 * reports. Jobs arrive on a priority queue, receive rank-granular
 * grants under weighted fair-share, train in quanta of tau-rounds,
 * and are preempted at round boundaries through the
 * `TrainerSession` pause/checkpoint contract: the session is
 * checkpointed to memory, its machine torn down, and the job resumed
 * later — possibly on a different physical rank subset — through
 * `restoreOffline()`, whose functional MRAM rebuild reuses the
 * survivor-repartition machinery (docs/ARCHITECTURE.md §9, §12).
 *
 * Scheduling policy (normative statement in docs/SCHEDULER.md):
 *
 *  - **Weighted fair-share across tenants.** Each tenant accrues
 *    virtual time = consumed rank-seconds / weight; the queued job
 *    whose tenant has the least virtual time is considered first.
 *    Ties break by job priority (higher first), then the job's own
 *    consumed rank-seconds (least first — equal-standing jobs
 *    round-robin, so a just-preempted job cannot re-win its ranks
 *    from a starving sibling), then arrival time, then job id — a
 *    total order, so two runs of the same job set produce
 *    byte-identical schedules.
 *  - **Backfill.** A queued job that cannot get its minimum grant is
 *    skipped, and later (smaller) jobs in fair-share order may take
 *    the free ranks.
 *  - **Quantum preemption.** After `quantumRounds` tau-rounds the
 *    grant is reconsidered; the job is preempted iff another job is
 *    queued, paying the modelled checkpoint cost, and requeued. With
 *    an empty queue the job simply continues (no cost).
 *  - **Time dilation.** A grant of g < ranks physical ranks
 *    time-multiplexes the job's logical machine: fleet-clock
 *    durations stretch by ceil(ranks / g) while modelled results
 *    stay bit-identical.
 *
 * Determinism contract, enforced by tests/test_fleet.cc and
 * bench/perf_fleet_jobs: for a fixed job set, every job's final
 * Q-table is **bit-identical to the same spec run standalone**
 * (PimTrainer on a dedicated machine), for any quantum, tenant
 * weights, fleet size that fits it, and host-thread count —
 * scheduling moves only fleet-clock time, never a learned value.
 */

#ifndef SWIFTRL_FLEET_SCHEDULER_HH
#define SWIFTRL_FLEET_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/job_spec.hh"
#include "rlcore/qtable.hh"
#include "swiftrl/pim_trainer.hh"

namespace swiftrl::fleet {

/** Per-job accounting and result, one per submitted job. */
struct JobOutcome
{
    /** Job id / tenant, copied from the spec. */
    std::string id;
    std::string tenant;

    /** The job's final aggregated Q-table — bit-identical to the
     *  same spec run standalone. */
    rlcore::QTable finalQ;

    /** Fleet-clock submission time (= spec.arrivalSec). */
    double arrivalSec = 0.0;

    /** Fleet clock at the first grant. */
    double firstDispatchSec = 0.0;

    /** Fleet clock at completion (final retrieval done). */
    double finishSec = 0.0;

    /** Total time spent waiting in the queue, across all requeues. */
    double queueWaitSec = 0.0;

    /** Times the job was checkpointed off its ranks. */
    int preemptions = 0;

    /** Grants the job received (first dispatch + resumes). */
    int grants = 0;

    /** Session-internal modelled training seconds (undilated). */
    double modelledTrainSec = 0.0;

    /** Fleet-clock seconds the job occupied ranks (dilation and
     *  checkpoint/restore/dispatch overheads included). */
    double occupiedSec = 0.0;

    /** Smallest physical grant the job ever ran on, in ranks. */
    std::size_t minGrantRanks = 0;

    /** Communication rounds trained. */
    int commRounds = 0;

    /** Faults detected across the job's whole run (all grants). */
    int faultsDetected = 0;

    /** Cores lost to permanent dropouts over the whole run. */
    std::size_t coresLost = 0;

    /** Causal-trace span id of the job's "fleet.job" span (0 when no
     *  tracing ran). Serving frontends attached to the job after the
     *  run parent their spans here. */
    std::uint64_t traceSpanId = 0;

    JobOutcome() : finalQ(1, 1) {}
};

/** Whole-run result of FleetScheduler::run(). */
struct FleetResult
{
    /** One outcome per job, in submission (spec) order. */
    std::vector<JobOutcome> jobs;

    /** Fleet clock when the last job finished. */
    double makespanSec = 0.0;

    /** Busy rank-seconds summed over all ranks. */
    double rankBusySeconds = 0.0;

    /** Per-rank busy seconds (index = rank id). */
    std::vector<double> perRankBusySec;

    /** Preemptions summed over all jobs. */
    int totalPreemptions = 0;

    /**
     * The schedule, one line per decision ("t=<sec> grant job=...",
     * "... preempt ...", "... finish ..."), byte-deterministic for a
     * fixed job set — tests pin interleavings against it.
     */
    std::vector<std::string> dispatchLog;

    /** The headline throughput metric: jobs per fleet-clock hour. */
    double
    jobsPerHour() const
    {
        return makespanSec > 0.0
                   ? static_cast<double>(jobs.size()) /
                         (makespanSec / 3600.0)
                   : 0.0;
    }

    /** Mean rank occupancy over the makespan, in [0, 1]. */
    double
    occupancy() const
    {
        const double capacity =
            makespanSec * static_cast<double>(perRankBusySec.size());
        return capacity > 0.0 ? rankBusySeconds / capacity : 0.0;
    }
};

/** The fleet scheduler. See file comment for the policy. */
class FleetScheduler
{
  public:
    explicit FleetScheduler(FleetConfig config);

    /**
     * Schedule @p jobs to completion and return the per-job results
     * plus fleet accounting. Synchronous and deterministic; with a
     * metrics registry configured, exports the fleet_* metric set
     * (docs/SCHEDULER.md "Metrics") when the run completes.
     */
    FleetResult run(const std::vector<JobSpec> &jobs);

    /**
     * Reference point for the determinism contract: run @p job alone
     * on a dedicated machine of job.ranks * config.dpusPerRank cores
     * — the result every fleet schedule must reproduce bit-exactly.
     */
    static PimTrainResult runStandalone(const JobSpec &job,
                                        const FleetConfig &config);

  private:
    FleetConfig _config;
};

} // namespace swiftrl::fleet

#endif // SWIFTRL_FLEET_SCHEDULER_HH
