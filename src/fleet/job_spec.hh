/**
 * @file
 * The fleet scheduler's job and fleet descriptors, plus the operator
 * JSON surface that fills them.
 *
 * A *job* is one complete training run — environment x workload
 * variant x hyper-parameters x tenant — expressed as the ingredients
 * of a `swiftrl::TrainerSession` (offline mode). A *fleet* is a
 * shared pool of DPU ranks jobs are scheduled onto. The JSON document
 * format (the `--fleet jobs.json` CLI surface) is specified
 * field-by-field in docs/SCHEDULER.md; parsing rejects unknown keys
 * so an operator typo fails loudly instead of silently running the
 * default.
 *
 * Shape vocabulary, fixed here and used everywhere in src/fleet:
 *
 *  - `ranks` is the job's **logical width**: the rank count its
 *    simulated machine is built with (`ranks * dpusPerRank` DPU
 *    cores). It is part of the job's *identity* — the final Q-table
 *    depends on it — and never changes across preemptions.
 *  - `minRanks <= ranks` is the smallest **physical grant** the job
 *    accepts. Granting g < ranks physical ranks time-multiplexes the
 *    logical machine onto them: modelled results are bit-identical,
 *    wall (fleet-clock) time dilates by ceil(ranks / g). See
 *    docs/SCHEDULER.md "Rank grants and time dilation".
 */

#ifndef SWIFTRL_FLEET_JOB_SPEC_HH
#define SWIFTRL_FLEET_JOB_SPEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rlcore/types.hh"
#include "swiftrl/workload.hh"

namespace swiftrl {

namespace telemetry {
class MetricRegistry;
}

namespace fleet {

/** One training job submitted to the fleet. */
struct JobSpec
{
    /** Unique job id (the `job` metric label); required. */
    std::string id;

    /** Tenant the job bills to (the fair-share bucket); required. */
    std::string tenant;

    /** Higher runs first among equal fair-share standing. */
    int priority = 0;

    /** Fleet-clock submission time, modelled seconds. */
    double arrivalSec = 0.0;

    /** Logical width in ranks (identity; see file comment). */
    std::size_t ranks = 1;

    /** Smallest acceptable physical grant (0 = same as ranks). */
    std::size_t minRanks = 0;

    /** Environment name ("frozenlake", "taxi", "cliffwalking"). */
    std::string env = "frozenlake";

    /** Workload variant (algo x sampling x numeric format). */
    Workload workload;

    /** Hyper-parameters; hyper.episodes is the episode budget. */
    rlcore::Hyper hyper;

    /** Synchronisation period tau (clamped to episodes). */
    int tau = 50;

    /** Offline dataset size collected for the job. */
    std::size_t transitions = 20'000;

    /** Tasklets per core. */
    unsigned tasklets = 1;

    /** Dataset-collection seed (hyper.seed trains; this collects). */
    std::uint64_t collectSeed = 1;

    /** The grant floor with the 0-default resolved. */
    std::size_t
    effectiveMinRanks() const
    {
        return minRanks == 0 ? ranks : minRanks;
    }
};

/** The shared fleet and the scheduling policy knobs. */
struct FleetConfig
{
    /** Ranks in the shared pool. */
    std::size_t totalRanks = 8;

    /** Simulated DPU cores per rank (a job's machine has
     *  ranks * dpusPerRank cores). */
    std::size_t dpusPerRank = 8;

    /** Rounds per scheduling quantum: a granted job trains this many
     *  tau-rounds before the scheduler reconsiders the grant. */
    int quantumRounds = 4;

    /**
     * Modelled host cost of serialising one checkpoint byte at
     * preemption (one streaming pass: copy + FNV checksum, the
     * `FaultPlan::checksumSecPerByte` class of work — see
     * docs/COSTMODEL.md "Fleet scheduling"). Timing-only by the
     * cost-model invariant.
     */
    double checkpointSecPerByte = 1.0e-9;

    /** Modelled host cost per checkpoint byte at restore (same
     *  pass in the other direction). */
    double restoreSecPerByte = 1.0e-9;

    /** Fixed host cost of (re)dispatching a job onto a grant —
     *  allocation bookkeeping + session construction, a
     *  `launchOverheadSec`-class host-runtime round trip. */
    double dispatchOverheadSec = 50.0e-6;

    /** Host threads for each job's functional simulation (0 = one
     *  per hardware thread; never changes modelled results). */
    unsigned hostThreads = 0;

    /** Per-tenant fair-share weights; tenants absent here weigh 1. */
    std::vector<std::pair<std::string, double>> tenantWeights;

    /** Telemetry destination (null = off). Observation-only. */
    telemetry::MetricRegistry *metrics = nullptr;

    /** Weight for @p tenant (default 1.0). */
    double weightFor(const std::string &tenant) const;
};

/** A parsed `--fleet` document: the fleet plus its job list. */
struct FleetSpec
{
    FleetConfig config;
    std::vector<JobSpec> jobs;
};

/**
 * Parse the operator JSON document (schema in docs/SCHEDULER.md).
 * Fatal on malformed JSON, unknown keys, duplicate job ids, or
 * out-of-range values — the operator surface fails loudly.
 */
FleetSpec parseFleetSpec(const std::string &json_text);

/** Read @p path and parse it; fatal on I/O failure. */
FleetSpec loadFleetSpec(const std::string &path);

} // namespace fleet
} // namespace swiftrl

#endif // SWIFTRL_FLEET_JOB_SPEC_HH
