#include "fleet/job_spec.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "rlcore/trainers.hh"

namespace swiftrl::fleet {

double
FleetConfig::weightFor(const std::string &tenant) const
{
    for (const auto &[name, weight] : tenantWeights) {
        if (name == tenant)
            return weight;
    }
    return 1.0;
}

namespace {

/** Reject members outside @p allowed (operator typos fail loudly). */
void
rejectUnknownKeys(const json::JsonValue &object,
                  const std::set<std::string> &allowed,
                  const char *where)
{
    for (const auto &[key, value] : object.members) {
        (void)value;
        if (!allowed.contains(key))
            SWIFTRL_FATAL("fleet spec: unknown key \"", key, "\" in ",
                          where, " (see docs/SCHEDULER.md for the "
                          "schema)");
    }
}

long
positiveInt(const json::JsonValue &object, const char *key,
            long fallback, const char *where)
{
    const long v = object.intOr(key, fallback);
    if (v <= 0)
        SWIFTRL_FATAL("fleet spec: ", where, ".", key,
                      " must be positive, got ", v);
    return v;
}

JobSpec
parseJob(const json::JsonValue &j, std::size_t index)
{
    static const std::set<std::string> kJobKeys = {
        "id",       "tenant",   "priority",    "arrival_sec",
        "ranks",    "min_ranks", "env",        "algo",
        "sampling", "format",   "episodes",    "tau",
        "transitions", "tasklets", "alpha",    "gamma",
        "epsilon",  "seed",
    };
    const std::string where = "jobs[" + std::to_string(index) + "]";
    rejectUnknownKeys(j, kJobKeys, where.c_str());

    JobSpec spec;
    spec.id = j.stringOr("id", "");
    if (spec.id.empty())
        SWIFTRL_FATAL("fleet spec: ", where, " needs a non-empty "
                      "\"id\"");
    spec.tenant = j.stringOr("tenant", "");
    if (spec.tenant.empty())
        SWIFTRL_FATAL("fleet spec: job \"", spec.id, "\" needs a "
                      "non-empty \"tenant\"");
    spec.priority = static_cast<int>(j.intOr("priority", 0));
    spec.arrivalSec = j.numberOr("arrival_sec", 0.0);
    if (spec.arrivalSec < 0.0)
        SWIFTRL_FATAL("fleet spec: job \"", spec.id,
                      "\" arrival_sec must be >= 0");
    spec.ranks = static_cast<std::size_t>(
        positiveInt(j, "ranks", 1, where.c_str()));
    const long min_ranks = j.intOr("min_ranks", 0);
    if (min_ranks < 0 ||
        static_cast<std::size_t>(min_ranks) > spec.ranks)
        SWIFTRL_FATAL("fleet spec: job \"", spec.id,
                      "\" min_ranks must be in [0, ranks]");
    spec.minRanks = static_cast<std::size_t>(min_ranks);
    spec.env = j.stringOr("env", "frozenlake");
    spec.workload.algo =
        rlcore::parseAlgorithm(j.stringOr("algo", "qlearning"));
    spec.workload.sampling =
        rlcore::parseSampling(j.stringOr("sampling", "seq"));
    spec.workload.format =
        rlcore::parseNumericFormat(j.stringOr("format", "int32"));
    spec.hyper.episodes = static_cast<int>(
        positiveInt(j, "episodes", 100, where.c_str()));
    spec.tau =
        static_cast<int>(positiveInt(j, "tau", 50, where.c_str()));
    if (spec.tau > spec.hyper.episodes)
        spec.tau = spec.hyper.episodes;
    spec.transitions = static_cast<std::size_t>(
        positiveInt(j, "transitions", 20'000, where.c_str()));
    spec.tasklets = static_cast<unsigned>(
        positiveInt(j, "tasklets", 1, where.c_str()));
    spec.hyper.alpha = static_cast<float>(j.numberOr("alpha", 0.1));
    spec.hyper.gamma = static_cast<float>(j.numberOr("gamma", 0.95));
    spec.hyper.epsilon =
        static_cast<float>(j.numberOr("epsilon", 0.05));
    // Seed discipline matches swiftrl_cli: one operator seed derives
    // the collection seed directly and the training seed at +41, so
    // a fleet job and a standalone CLI run of the same spec draw the
    // same datasets and LCG streams.
    const auto seed =
        static_cast<std::uint64_t>(j.intOr("seed", 1));
    spec.collectSeed = seed;
    spec.hyper.seed = seed + 41;
    return spec;
}

} // namespace

FleetSpec
parseFleetSpec(const std::string &json_text)
{
    std::string error;
    const auto doc = json::parseJson(json_text, &error);
    if (!doc)
        SWIFTRL_FATAL("fleet spec: malformed JSON (", error, ")");
    if (!doc->isObject())
        SWIFTRL_FATAL("fleet spec: the document must be an object");
    static const std::set<std::string> kTopKeys = {"fleet", "tenants",
                                                  "jobs"};
    rejectUnknownKeys(*doc, kTopKeys, "the top-level object");

    FleetSpec spec;
    if (const auto *fleet = doc->find("fleet")) {
        if (!fleet->isObject())
            SWIFTRL_FATAL("fleet spec: \"fleet\" must be an object");
        static const std::set<std::string> kFleetKeys = {
            "ranks", "dpus_per_rank", "quantum_rounds"};
        rejectUnknownKeys(*fleet, kFleetKeys, "\"fleet\"");
        spec.config.totalRanks = static_cast<std::size_t>(
            positiveInt(*fleet, "ranks", 8, "fleet"));
        spec.config.dpusPerRank = static_cast<std::size_t>(
            positiveInt(*fleet, "dpus_per_rank", 8, "fleet"));
        spec.config.quantumRounds = static_cast<int>(
            positiveInt(*fleet, "quantum_rounds", 4, "fleet"));
    }

    if (const auto *tenants = doc->find("tenants")) {
        if (!tenants->isObject())
            SWIFTRL_FATAL("fleet spec: \"tenants\" must map tenant "
                          "names to fair-share weights");
        for (const auto &[name, weight] : tenants->members) {
            if (!weight.isNumber() || !(weight.number > 0.0))
                SWIFTRL_FATAL("fleet spec: tenant \"", name,
                              "\" weight must be a positive number");
            spec.config.tenantWeights.emplace_back(name,
                                                   weight.number);
        }
    }

    const auto *jobs = doc->find("jobs");
    if (!jobs || !jobs->isArray() || jobs->elements.empty())
        SWIFTRL_FATAL("fleet spec: \"jobs\" must be a non-empty "
                      "array");
    std::set<std::string> seen_ids;
    for (std::size_t i = 0; i < jobs->elements.size(); ++i) {
        const auto &element = jobs->elements[i];
        if (!element.isObject())
            SWIFTRL_FATAL("fleet spec: jobs[", i,
                          "] must be an object");
        JobSpec job = parseJob(element, i);
        if (!seen_ids.insert(job.id).second)
            SWIFTRL_FATAL("fleet spec: duplicate job id \"", job.id,
                          "\"");
        if (job.ranks > spec.config.totalRanks)
            SWIFTRL_FATAL("fleet spec: job \"", job.id, "\" wants ",
                          job.ranks, " ranks but the fleet has ",
                          spec.config.totalRanks);
        spec.jobs.push_back(std::move(job));
    }
    return spec;
}

FleetSpec
loadFleetSpec(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SWIFTRL_FATAL("cannot open fleet spec ", path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseFleetSpec(text.str());
}

} // namespace swiftrl::fleet
