#include "roofline/roofline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace swiftrl::roofline {

using baselines::PlatformSpec;
using baselines::updateOpMix;
using rlcore::Algorithm;

double
RooflineModel::ridgeIntensity() const
{
    SWIFTRL_ASSERT(machine.memBandwidthBytes > 0,
                   "machine needs a bandwidth roof");
    return machine.peakGflops * 1.0e9 / machine.memBandwidthBytes;
}

double
RooflineModel::attainable(double oi) const
{
    SWIFTRL_ASSERT(oi > 0, "operational intensity must be positive");
    const double bw_roof =
        oi * machine.memBandwidthBytes / 1.0e9; // GFLOP/s
    return std::min(machine.peakGflops, bw_roof);
}

RooflinePoint
RooflineModel::place(Algorithm algo, rlcore::ActionId num_actions,
                     std::size_t dataset_transitions,
                     const std::string &label) const
{
    const auto mix = updateOpMix(algo, num_actions);

    RooflinePoint point;
    point.label = label;
    point.operationalIntensity = mix.flops / mix.bytesStreamed;
    point.attainableGflops = attainable(point.operationalIntensity);
    point.memoryBound =
        point.operationalIntensity < ridgeIntensity();

    // Achieved performance sits below the roof: scalar dependent
    // chains cannot use the SIMD peak, and datasets past the LLC lose
    // the partial reuse a smaller working set enjoys. The efficiency
    // split reproduces Fig. 2's 1M-vs-20M separation.
    const double dataset_bytes =
        static_cast<double>(dataset_transitions) * 16.0;
    const double cache_factor =
        dataset_bytes <= machine.cacheBytes * 2.0 ? 0.85 : 0.55;
    point.achievedGflops = point.attainableGflops * cache_factor;
    return point;
}

std::vector<RooflinePoint>
fig2Points(const PlatformSpec &machine, rlcore::ActionId num_actions)
{
    RooflineModel model{machine};
    return {
        model.place(Algorithm::QLearning, num_actions, 1'000'000,
                    "Q-1M"),
        model.place(Algorithm::QLearning, num_actions, 20'000'000,
                    "Q-20M"),
        model.place(Algorithm::Sarsa, num_actions, 1'000'000, "S-1M"),
        model.place(Algorithm::Sarsa, num_actions, 20'000'000,
                    "S-20M"),
    };
}

} // namespace swiftrl::roofline
