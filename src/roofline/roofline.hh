/**
 * @file
 * Roofline analysis of the RL training loops (paper Fig. 2): place the
 * Q-learner and SARSA-learner CPU workloads on the roofline of the
 * paper's measurement host (Intel i7-9700K) by counting their
 * operational intensity analytically and bounding attainable
 * performance by min(peak, OI x DRAM bandwidth).
 *
 * Operational intensity here is a property of the algorithm: flops per
 * DRAM byte, with the Q-table assumed cache-resident and the
 * experience stream coming from DRAM (datasets of 1M/20M transitions
 * exceed every cache level).
 */

#ifndef SWIFTRL_ROOFLINE_ROOFLINE_HH
#define SWIFTRL_ROOFLINE_ROOFLINE_HH

#include <string>
#include <vector>

#include "baselines/platform_model.hh"
#include "rlcore/trainers.hh"
#include "rlcore/types.hh"

namespace swiftrl::roofline {

/** One workload's position on a roofline plot. */
struct RooflinePoint
{
    /** Label, e.g. "Q-1M". */
    std::string label;

    /** Operational intensity, flops per DRAM byte. */
    double operationalIntensity = 0.0;

    /** Attainable performance at that OI, GFLOP/s. */
    double attainableGflops = 0.0;

    /** Estimated achieved performance, GFLOP/s. */
    double achievedGflops = 0.0;

    /** True when the bandwidth roof (not the compute roof) binds. */
    bool memoryBound = false;
};

/** Roofs of the analysed machine. */
struct RooflineModel
{
    baselines::PlatformSpec machine;

    /** OI at which the two roofs intersect (the ridge point). */
    double ridgeIntensity() const;

    /** Attainable GFLOP/s at a given operational intensity. */
    double attainable(double oi) const;

    /**
     * Place one workload. Cache effectiveness falls off as the
     * dataset grows past the LLC, dropping achieved performance
     * below the roof — the 1M-vs-20M separation in Fig. 2.
     *
     * @param dataset_transitions experience count (16 bytes each).
     */
    RooflinePoint place(rlcore::Algorithm algo,
                        rlcore::ActionId num_actions,
                        std::size_t dataset_transitions,
                        const std::string &label) const;
};

/** The paper's Fig. 2 point set: {Q, SARSA} x {1M, 20M} on a host. */
std::vector<RooflinePoint> fig2Points(
    const baselines::PlatformSpec &machine,
    rlcore::ActionId num_actions);

} // namespace swiftrl::roofline

#endif // SWIFTRL_ROOFLINE_ROOFLINE_HH
