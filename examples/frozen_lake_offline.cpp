/**
 * @file
 * Frozen lake offline-RL study: train all 12 SwiftRL workload
 * variants ({Q-learning, SARSA} x {SEQ, RAN, STR} x {FP32, INT32}) on
 * one offline dataset and compare training quality and modelled PIM
 * execution time side by side — the single-environment version of the
 * paper's full evaluation.
 *
 * Run: ./build/examples/frozen_lake_offline [--transitions N]
 *      [--episodes E] [--cores C]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "swiftrl/swiftrl.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;

    const common::CliFlags flags(argc, argv,
                                 {"transitions", "episodes", "cores"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 200'000));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", 50));
    const auto cores =
        static_cast<std::size_t>(flags.getInt("cores", 128));

    auto env = rlenv::makeEnvironment("frozenlake");
    const auto data = rlcore::collectRandomDataset(*env, n, 1);
    std::cout << "frozen lake offline study: " << n
              << " transitions, " << episodes << " episodes, "
              << cores << " PIM cores\n\n";

    TextTable t("All 12 workload variants on one dataset");
    t.setHeader({"workload", "mean reward", "kernel s", "total s"});
    double fp32_seq_kernel = 0.0, int32_seq_kernel = 0.0;
    for (const auto &workload : allWorkloads()) {
        pimsim::PimConfig pim;
        pim.numDpus = cores;
        pimsim::PimSystem system(pim);

        PimTrainConfig cfg;
        cfg.workload = workload;
        cfg.hyper.episodes = episodes;
        cfg.tau = 25;
        PimTrainer trainer(system, cfg);
        const auto result =
            trainer.train(data, env->numStates(), env->numActions());
        const auto eval = rlcore::evaluateGreedy(*env, result.finalQ,
                                                 1000, 7);

        if (workload.algo == rlcore::Algorithm::QLearning &&
            workload.sampling == rlcore::Sampling::Seq) {
            if (workload.format == rlcore::NumericFormat::Fp32)
                fp32_seq_kernel = result.time.kernel;
            else
                int32_seq_kernel = result.time.kernel;
        }

        t.addRow({workload.name(), TextTable::num(eval.meanReward, 4),
                  TextTable::num(result.time.kernel, 3),
                  TextTable::num(result.time.total(), 3)});
    }
    t.print(std::cout);

    std::cout << "\ntakeaways:\n"
              << "  - every variant learns an equivalent policy "
                 "(quality is format- and sampling-insensitive);\n"
              << "  - the INT32 scaling optimisation speeds the "
                 "Q-SEQ kernel up by "
              << TextTable::speedup(fp32_seq_kernel /
                                        int32_seq_kernel,
                                    2)
              << " by avoiding runtime FP32 emulation.\n";
    return 0;
}
