/**
 * @file
 * Sampling-pattern study: why PIM tolerates random access and CPUs do
 * not. Runs the same Q-learning workload under SEQ, RAN, and STR
 * sampling on (a) the simulated PIM system and (b) the calibrated
 * Xeon model, and prints the slowdown of each pattern relative to
 * SEQ on each platform — the paper's key takeaway #4.
 *
 * Run: ./build/examples/sampling_patterns [--env frozenlake|taxi]
 *      [--transitions N]
 */

#include <iostream>

#include "baselines/platform_model.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "swiftrl/swiftrl.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv, {"env", "transitions"});
    const auto env_name = flags.getString("env", "taxi");
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 2'000'000));

    auto env = rlenv::makeEnvironment(env_name);
    const auto data = rlcore::collectRandomDataset(*env, n, 1);
    const auto q_entries =
        static_cast<std::size_t>(env->numStates()) *
        static_cast<std::size_t>(env->numActions());

    std::cout << "sampling-pattern study on " << env_name << ", " << n
              << " transitions\n\n";

    const auto cpu_spec = baselines::xeonSilver4110();
    const baselines::CpuModelParams cpu_params;

    TextTable t("Pattern cost relative to SEQ (lower = pattern-"
                "insensitive)");
    t.setHeader({"pattern", "PIM kernel s", "PIM slowdown",
                 "CPU (model) s", "CPU slowdown"});

    double pim_seq = 0.0, cpu_seq = 0.0;
    for (const auto sampling :
         {Sampling::Seq, Sampling::Ran, Sampling::Str}) {
        pimsim::PimConfig pim;
        pim.numDpus = 256;
        pimsim::PimSystem system(pim);
        PimTrainConfig cfg;
        cfg.workload = Workload{rlcore::Algorithm::QLearning, sampling,
                                rlcore::NumericFormat::Int32};
        cfg.hyper.episodes = 5;
        cfg.tau = 5;
        PimTrainer trainer(system, cfg);
        const auto result =
            trainer.train(data, env->numStates(), env->numActions());

        const double cpu_s = baselines::estimateCpuSeconds(
            cpu_spec, cpu_params, baselines::CpuVersion::V1,
            rlcore::Algorithm::QLearning, sampling,
            env->numActions(), q_entries, n, 5);

        if (sampling == Sampling::Seq) {
            pim_seq = result.time.kernel;
            cpu_seq = cpu_s;
        }
        t.addRow({rlcore::samplingName(sampling),
                  TextTable::num(result.time.kernel, 3),
                  TextTable::speedup(result.time.kernel / pim_seq, 2),
                  TextTable::num(cpu_s, 3),
                  TextTable::speedup(cpu_s / cpu_seq, 2)});
    }
    t.print(std::cout);

    std::cout
        << "\nreading: near-bank DRAM latency is flat, so random "
           "draws cost the PIM only its per-record DMA setup; the "
           "CPU loses its hardware prefetcher and pays a cache miss "
           "per draw once the dataset outgrows the LLC (the paper's "
           "Key Takeaway 4).\n";
    return 0;
}
