/**
 * @file
 * Quickstart: the SwiftRL pipeline end to end in ~40 lines.
 *
 *   1. Collect an offline dataset with a random behaviour policy.
 *   2. Build a simulated UPMEM-like PIM system.
 *   3. Train tabular Q-learning (INT32 fixed point, sequential
 *      sampling) across the PIM cores with tau-periodic averaging.
 *   4. Evaluate the deployed greedy policy and print the modelled
 *      execution-time breakdown.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */

#include <iostream>

#include "swiftrl/swiftrl.hh"

int
main()
{
    using namespace swiftrl;

    // 1. Offline data: 100k transitions of slippery frozen lake.
    auto env = rlenv::makeEnvironment("frozenlake");
    auto data = rlcore::collectRandomDataset(*env, 100'000, /*seed=*/1);
    std::cout << "collected " << data.size()
              << " transitions from " << env->name() << "\n";

    // 2. A 256-core PIM system with the default UPMEM-like model.
    pimsim::PimConfig pim;
    pim.numDpus = 256;
    pimsim::PimSystem system(pim);

    // 3. Train Q-learning-SEQ-INT32 for 100 episodes, tau = 25.
    PimTrainConfig cfg;
    cfg.workload = Workload{rlcore::Algorithm::QLearning,
                            rlcore::Sampling::Seq,
                            rlcore::NumericFormat::Int32};
    cfg.hyper.episodes = 100;
    cfg.tau = 25;
    PimTrainer trainer(system, cfg);
    const auto result =
        trainer.train(data, env->numStates(), env->numActions());

    // 4. Deploy the aggregated policy.
    const auto eval =
        rlcore::evaluateGreedy(*env, result.finalQ, 1000, /*seed=*/7);

    std::cout << "workload:        " << cfg.workload.name() << "\n"
              << "PIM cores:       " << result.coresUsed << "\n"
              << "comm rounds:     " << result.commRounds << "\n"
              << "mean reward:     " << eval.meanReward
              << " (random policy: ~0.01, optimum: ~0.74)\n"
              << "modelled time:   " << result.time.total() << " s\n"
              << "  kernel:        " << result.time.kernel << " s\n"
              << "  cpu->pim:      " << result.time.cpuToPim << " s\n"
              << "  pim->cpu:      " << result.time.pimToCpu << " s\n"
              << "  inter-core:    " << result.time.interCore
              << " s\n";
    return 0;
}
