/**
 * @file
 * swiftrl_cli: run any SwiftRL workload from the command line — the
 * driver a downstream user reaches for first. Collects (or loads) an
 * offline dataset, trains the chosen workload variant on a simulated
 * PIM system, evaluates the deployed policy, prints the full report
 * (time breakdown + instruction mix), and optionally checkpoints the
 * dataset and the trained Q-table.
 *
 * Examples:
 *   swiftrl_cli --env taxi --algo sarsa --sampling ran --format int32
 *   swiftrl_cli --env frozenlake --cores 2000 --episodes 200 --tau 50
 *   swiftrl_cli --env frozenlake --save-qtable policy.swrl
 *   swiftrl_cli --env frozenlake --tasklets 11 --stats
 */

#include <iostream>

#include "common/cli.hh"
#include "pimsim/stats_report.hh"
#include "rlcore/serialization.hh"
#include "swiftrl/swiftrl.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;

    const common::CliFlags flags(
        argc, argv,
        {"env", "algo", "sampling", "format", "cores", "episodes",
         "tau", "tasklets", "transitions", "seed", "eval-episodes",
         "save-qtable", "save-dataset", "load-dataset", "stats",
         "alpha", "gamma", "epsilon", "weighted", "trace",
         "host-threads"});

    const auto env_name = flags.getString("env", "frozenlake");
    auto env = rlenv::makeEnvironment(env_name);

    // Dataset: load a checkpoint or collect fresh.
    rlcore::Dataset data;
    const auto load_path = flags.getString("load-dataset", "");
    if (!load_path.empty()) {
        data = rlcore::loadDataset(load_path);
        std::cout << "loaded " << data.size() << " transitions from "
                  << load_path << "\n";
    } else {
        const auto n = static_cast<std::size_t>(
            flags.getInt("transitions", 100'000));
        data = rlcore::collectRandomDataset(
            *env, n,
            static_cast<std::uint64_t>(flags.getInt("seed", 1)));
        std::cout << "collected " << data.size()
                  << " transitions from " << env_name << "\n";
    }
    const auto save_data = flags.getString("save-dataset", "");
    if (!save_data.empty()) {
        rlcore::saveDataset(data, save_data);
        std::cout << "dataset saved to " << save_data << "\n";
    }

    // Machine. --host-threads only changes how fast the simulation
    // itself runs (0 = one worker per hardware thread); results and
    // modelled times are bit-identical for every value.
    pimsim::PimConfig pim;
    pim.numDpus =
        static_cast<std::size_t>(flags.getInt("cores", 256));
    pim.hostThreads =
        static_cast<unsigned>(flags.getInt("host-threads", 0));
    pimsim::PimSystem system(pim);

    // Workload.
    PimTrainConfig cfg;
    cfg.workload.algo =
        rlcore::parseAlgorithm(flags.getString("algo", "qlearning"));
    cfg.workload.sampling =
        rlcore::parseSampling(flags.getString("sampling", "seq"));
    cfg.workload.format = rlcore::parseNumericFormat(
        flags.getString("format", "int32"));
    cfg.hyper.episodes =
        static_cast<int>(flags.getInt("episodes", 100));
    cfg.hyper.alpha =
        static_cast<float>(flags.getDouble("alpha", 0.1));
    cfg.hyper.gamma =
        static_cast<float>(flags.getDouble("gamma", 0.95));
    cfg.hyper.epsilon =
        static_cast<float>(flags.getDouble("epsilon", 0.05));
    cfg.hyper.seed =
        static_cast<std::uint64_t>(flags.getInt("seed", 1)) + 41;
    cfg.tau = static_cast<int>(flags.getInt("tau", 50));
    if (cfg.tau > cfg.hyper.episodes)
        cfg.tau = cfg.hyper.episodes;
    cfg.tasklets =
        static_cast<unsigned>(flags.getInt("tasklets", 1));
    cfg.weightedAggregation = flags.getBool("weighted", false);

    std::cout << "training " << cfg.workload.name() << " on "
              << pim.numDpus << " PIM cores x " << cfg.tasklets
              << " tasklet(s), " << cfg.hyper.episodes
              << " episodes, tau=" << cfg.tau << "\n";

    PimTrainer trainer(system, cfg);
    const auto result =
        trainer.train(data, env->numStates(), env->numActions());

    // Evaluation.
    const auto eval_episodes =
        static_cast<int>(flags.getInt("eval-episodes", 1000));
    const auto eval = rlcore::evaluateGreedy(*env, result.finalQ,
                                             eval_episodes, 7);

    std::cout << "\n--- results ---\n"
              << "mean reward:      " << eval.meanReward << " over "
              << eval_episodes << " episodes (success rate "
              << eval.successRate << ", mean steps "
              << eval.meanSteps << ")\n"
              << "modelled time:    " << result.time.total() << " s"
              << " (kernel " << result.time.kernel << ", cpu->pim "
              << result.time.cpuToPim << ", pim->cpu "
              << result.time.pimToCpu << ", inter-core "
              << result.time.interCore << ")\n"
              << "comm rounds:      " << result.commRounds << "\n";

    if (flags.getBool("stats", false)) {
        std::cout << "\n";
        pimsim::StatsReport::fromSystem(system).print(
            std::cout, "Device statistics");
    }

    // Export the run's command timeline as Chrome trace JSON: open
    // the file in chrome://tracing or https://ui.perfetto.dev.
    const auto trace_path = flags.getString("trace", "");
    if (!trace_path.empty()) {
        if (result.timeline.writeChromeTrace(trace_path)) {
            std::cout << "trace written to " << trace_path << " ("
                      << result.timeline.size() << " commands)\n";
        } else {
            std::cerr << "cannot write trace file " << trace_path
                      << "\n";
            return 1;
        }
    }

    const auto save_q = flags.getString("save-qtable", "");
    if (!save_q.empty()) {
        rlcore::saveQTable(result.finalQ, save_q);
        std::cout << "Q-table saved to " << save_q << "\n";
    }
    return 0;
}
