/**
 * @file
 * swiftrl_cli: run any SwiftRL workload from the command line — the
 * driver a downstream user reaches for first. Collects (or loads) an
 * offline dataset, trains the chosen workload variant on a simulated
 * PIM system, evaluates the deployed policy, prints the full report
 * (time breakdown + instruction mix), and optionally checkpoints the
 * dataset and the trained Q-table.
 *
 * With --streaming the offline collect-then-train flow is replaced by
 * the streaming actor–learner pipeline: --actors CPU threads collect
 * each generation while the PIM side trains the previous one, with
 * the behaviour policy refreshed from the learner every
 * --refresh-period generations.
 *
 * With --metrics (JSON) / --metrics-prom (Prometheus text) the run
 * additionally exports the telemetry registry — per-DPU instruction
 * mix, MRAM DMA bytes, straggler histograms, per-generation RL
 * metrics — together with a run manifest recording config, seeds,
 * fault plan, and cost-model provenance (docs/OBSERVABILITY.md).
 * --log-level (or SWIFTRL_LOG) sets the stderr verbosity.
 *
 * With --trace-spans the run retains its causal span tree (fleet ->
 * session -> engine / serving) and writes it as self-describing JSON
 * validated by tools/check_trace.py; --flight-record dumps the
 * always-on flight ring on exit and names the crash-dump destination
 * for SWIFTRL_FATAL / SWIFTRL_PANIC.
 *
 * Examples:
 *   swiftrl_cli --env taxi --algo sarsa --sampling ran --format int32
 *   swiftrl_cli --env frozenlake --cores 2000 --episodes 200 --tau 50
 *   swiftrl_cli --env frozenlake --save-qtable policy.swrl
 *   swiftrl_cli --env frozenlake --tasklets 11 --stats
 *   swiftrl_cli --env lake:64 --shards 8 --cores 32 --transitions 20000
 *   swiftrl_cli --env mptaxi:6x2 --shards 4 --cores 16
 *   swiftrl_cli --env frozenlake --metrics run.json --trace run.trace
 *   swiftrl_cli --env taxi --streaming --actors 4 --generations 8 \
 *               --refresh-period 2 --trace stream.json
 */

#include <algorithm>
#include <iostream>

#include "common/cli.hh"
#include "common/logging.hh"
#include "fleet/job_spec.hh"
#include "fleet/scheduler.hh"
#include "pimsim/stats_report.hh"
#include "rlcore/serialization.hh"
#include "serving/policy_server.hh"
#include "swiftrl/swiftrl.hh"
#include "telemetry/export.hh"
#include "telemetry/metric_registry.hh"
#include "telemetry/run_manifest.hh"
#include "telemetry/tracing.hh"

namespace {

/**
 * Causal-trace exports, shared by every mode: --trace-spans writes
 * the retained span dump (validated by tools/check_trace.py),
 * --flight-record writes the always-on flight ring on demand.
 * Returns non-zero when a requested file could not be written.
 */
int
writeTraceOutputs(const swiftrl::common::CliFlags &flags)
{
    using namespace swiftrl;

    const auto spans_path = flags.getString("trace-spans", "");
    if (!spans_path.empty()) {
        if (telemetry::tracer().writeSpansJson(spans_path)) {
            std::cout << "trace spans written to " << spans_path
                      << "\n";
        } else {
            SWIFTRL_WARN("cannot write span file ", spans_path);
            return 1;
        }
    }
    const auto flight_path = flags.getString("flight-record", "");
    if (!flight_path.empty()) {
        if (telemetry::tracer().writeFlightJson(flight_path)) {
            std::cout << "flight record written to " << flight_path
                      << "\n";
        } else {
            SWIFTRL_WARN("cannot write flight record ", flight_path);
            return 1;
        }
    }
    return 0;
}

/** Shared tail of both modes: evaluate, report, export, checkpoint. */
int
finishRun(const swiftrl::common::CliFlags &flags,
          swiftrl::rlenv::Environment &env,
          const swiftrl::rlcore::QTable &final_q,
          const swiftrl::pimsim::Timeline &timeline,
          swiftrl::pimsim::PimSystem &system,
          swiftrl::telemetry::MetricRegistry &metrics,
          const swiftrl::telemetry::RunManifest &manifest)
{
    using namespace swiftrl;

    const auto eval_episodes =
        static_cast<int>(flags.getInt("eval-episodes", 1000));
    const auto eval =
        rlcore::evaluateGreedy(env, final_q, eval_episodes, 7);
    std::cout << "mean reward:      " << eval.meanReward << " over "
              << eval_episodes << " episodes (success rate "
              << eval.successRate << ", mean steps " << eval.meanSteps
              << ")\n";
    metrics.gauge("rl_eval_mean_reward").set(eval.meanReward);
    metrics.gauge("rl_eval_success_rate").set(eval.successRate);

    if (flags.getBool("stats", false)) {
        std::cout << "\n";
        pimsim::StatsReport::fromSystem(system).print(
            std::cout, "Device statistics");
    }

    // Export the run's command timeline as Chrome trace JSON: open
    // the file in chrome://tracing or https://ui.perfetto.dev. With
    // telemetry on, the trace additionally carries counter tracks
    // (straggler ratio, DMA bytes, live cores, max |dQ|).
    const auto trace_path = flags.getString("trace", "");
    if (!trace_path.empty()) {
        // With --trace-spans active, the retained causal spans are
        // merged into the same trace as nested slices (pid 1).
        if (timeline.writeChromeTrace(
                trace_path,
                telemetry::tracer().chromeSpanEvents())) {
            std::cout << "trace written to " << trace_path << " ("
                      << timeline.size() << " commands)\n";
        } else {
            SWIFTRL_WARN("cannot write trace file ", trace_path);
            return 1;
        }
    }

    // Metrics export: JSON (tools/check_metrics.py validates it,
    // tools/bench_compare.py diffs it) and Prometheus text format.
    const auto metrics_path = flags.getString("metrics", "");
    if (!metrics_path.empty()) {
        if (telemetry::writeMetricsJson(metrics_path, manifest,
                                        metrics)) {
            std::cout << "metrics written to " << metrics_path << " ("
                      << metrics.size() << " metrics)\n";
        } else {
            SWIFTRL_WARN("cannot write metrics file ", metrics_path);
            return 1;
        }
    }
    const auto prom_path = flags.getString("metrics-prom", "");
    if (!prom_path.empty()) {
        if (telemetry::writeMetricsPrometheus(prom_path, manifest,
                                              metrics)) {
            std::cout << "prometheus metrics written to " << prom_path
                      << "\n";
        } else {
            SWIFTRL_WARN("cannot write metrics file ", prom_path);
            return 1;
        }
    }

    const auto save_q = flags.getString("save-qtable", "");
    if (!save_q.empty()) {
        rlcore::saveQTable(final_q, save_q);
        std::cout << "Q-table saved to " << save_q << "\n";
    }

    // --serve N: answer N greedy-action queries from the trained
    // table through the batched serving frontend (src/serving), as a
    // smoke of the deployment path. Queries walk the state space
    // round-robin, so the served actions are deterministic.
    const auto serve = flags.getInt("serve", 0);
    if (serve > 0) {
        serving::PolicyServer server(final_q, {});
        for (long long i = 0; i < serve; ++i) {
            const auto state = static_cast<rlcore::StateId>(
                i % final_q.numStates());
            if (server.act(state) < 0) {
                SWIFTRL_WARN("policy serving rejected state ", state);
                return 1;
            }
        }
        server.stop();
        const auto stats = server.stats();
        std::cout << "served " << stats.queries
                  << " greedy queries in " << stats.batches
                  << " batch(es)\n";
    }
    return writeTraceOutputs(flags);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swiftrl;

    const common::CliFlags flags(
        argc, argv,
        {"env", "algo", "sampling", "format", "cores", "episodes",
         "tau", "tasklets", "transitions", "seed", "eval-episodes",
         "save-qtable", "save-dataset", "load-dataset", "stats",
         "alpha", "gamma", "epsilon", "weighted", "trace",
         "host-threads", "streaming", "actors", "refresh-period",
         "generations", "fault-seed", "fault-rate", "dropout-rate",
         "retry-limit", "metrics", "metrics-prom", "log-level",
         "checkpoint", "pause-round", "restore", "serve", "fleet",
         "shards", "batch-exec", "trace-spans", "flight-record"});

    // --log-level overrides the SWIFTRL_LOG environment variable.
    // An unknown name warns once and falls back to inform rather
    // than aborting the run.
    const auto log_level_name = flags.getString("log-level", "");
    if (!log_level_name.empty())
        common::setLogLevelFromName(log_level_name, "--log-level");

    // Causal tracing: --trace-spans turns on span retention for the
    // whole run; --flight-record names the on-demand flight-ring dump
    // and doubles as the crash-dump destination, so a SWIFTRL_FATAL
    // mid-run still leaves the recorder's trail on disk.
    if (!flags.getString("trace-spans", "").empty())
        telemetry::tracer().enableExport(true);
    const auto flight_record_path =
        flags.getString("flight-record", "");
    if (!flight_record_path.empty())
        telemetry::tracer().setCrashDumpPath(flight_record_path);

    // --- fleet mode --------------------------------------------------
    // --fleet jobs.json replaces the single-run flow entirely: the
    // document describes a shared rank pool and a multi-tenant job
    // list (schema in docs/SCHEDULER.md), and the scheduler runs it
    // to completion. Per-run training flags are ignored — each job
    // carries its own workload and hyper-parameters.
    const auto fleet_path = flags.getString("fleet", "");
    if (!fleet_path.empty()) {
        if (flags.getBool("streaming", false) ||
            !flags.getString("checkpoint", "").empty() ||
            !flags.getString("restore", "").empty()) {
            SWIFTRL_FATAL("--fleet is its own mode; it cannot combine "
                          "with --streaming/--checkpoint/--restore");
        }
        auto spec = fleet::loadFleetSpec(fleet_path);
        spec.config.hostThreads =
            static_cast<unsigned>(flags.getInt("host-threads", 0));
        const bool want_fleet_metrics =
            !flags.getString("metrics", "").empty() ||
            !flags.getString("metrics-prom", "").empty();
        telemetry::MetricRegistry fleet_metrics(want_fleet_metrics);
        spec.config.metrics =
            want_fleet_metrics ? &fleet_metrics : nullptr;

        std::cout << "fleet: " << spec.config.totalRanks
                  << " rank(s) x " << spec.config.dpusPerRank
                  << " core(s), quantum "
                  << spec.config.quantumRounds << " round(s), "
                  << spec.jobs.size() << " job(s)\n";

        fleet::FleetScheduler scheduler(spec.config);
        const auto result = scheduler.run(spec.jobs);

        std::cout << "\n--- fleet results ---\n";
        for (const auto &job : result.jobs) {
            std::cout << job.id << " (tenant " << job.tenant
                      << "): finished at " << job.finishSec
                      << " s, queue wait " << job.queueWaitSec
                      << " s, " << job.preemptions
                      << " preemption(s), " << job.grants
                      << " grant(s), " << job.commRounds
                      << " round(s)\n";
        }
        std::cout << "makespan:         " << result.makespanSec
                  << " s\n"
                  << "throughput:       " << result.jobsPerHour()
                  << " jobs/hour\n"
                  << "rank occupancy:   " << result.occupancy()
                  << "\n"
                  << "preemptions:      " << result.totalPreemptions
                  << "\n";

        // --serve N in fleet mode: stand up one serving frontend per
        // finished job and answer N greedy queries from its trained
        // table, labelled with the job's tenant. Each server's span
        // tree parents on that job's fleet.job span, so serve traffic
        // in the trace dump is causally attributed to the job that
        // trained the table.
        const auto fleet_serve = flags.getInt("serve", 0);
        if (fleet_serve > 0) {
            for (const auto &job : result.jobs) {
                serving::ServingConfig serve_cfg;
                serve_cfg.traceParent = job.traceSpanId;
                serve_cfg.metrics = spec.config.metrics;
                serving::PolicyServer server(job.finalQ, serve_cfg);
                for (long long i = 0; i < fleet_serve; ++i) {
                    const auto state = static_cast<rlcore::StateId>(
                        i % job.finalQ.numStates());
                    if (server.act(state, job.tenant) < 0) {
                        SWIFTRL_WARN("policy serving rejected state ",
                                     state, " for job ", job.id);
                        return 1;
                    }
                }
                server.stop();
                const auto stats = server.stats();
                std::cout << "served " << stats.queries
                          << " queries for " << job.id << " (tenant "
                          << job.tenant << ") in " << stats.batches
                          << " batch(es)\n";
            }
        }

        telemetry::RunManifest fleet_manifest;
        fleet_manifest.tool = "swiftrl_cli";
        fleet_manifest.mode = "fleet";
        fleet_manifest.cores =
            spec.config.totalRanks * spec.config.dpusPerRank;
        fleet_manifest.hostThreads = spec.config.hostThreads;
        const auto fleet_metrics_path =
            flags.getString("metrics", "");
        if (!fleet_metrics_path.empty()) {
            if (!telemetry::writeMetricsJson(fleet_metrics_path,
                                             fleet_manifest,
                                             fleet_metrics)) {
                SWIFTRL_WARN("cannot write metrics file ",
                             fleet_metrics_path);
                return 1;
            }
            std::cout << "metrics written to " << fleet_metrics_path
                      << " (" << fleet_metrics.size()
                      << " metrics)\n";
        }
        const auto fleet_prom_path =
            flags.getString("metrics-prom", "");
        if (!fleet_prom_path.empty()) {
            if (!telemetry::writeMetricsPrometheus(
                    fleet_prom_path, fleet_manifest, fleet_metrics)) {
                SWIFTRL_WARN("cannot write metrics file ",
                             fleet_prom_path);
                return 1;
            }
            std::cout << "prometheus metrics written to "
                      << fleet_prom_path << "\n";
        }
        return writeTraceOutputs(flags);
    }

    const auto env_name = flags.getString("env", "frozenlake");
    auto env = rlenv::makeEnvironment(env_name);

    // Machine. --host-threads only changes how fast the simulation
    // itself runs (0 = one worker per hardware thread); results and
    // modelled times are bit-identical for every value.
    pimsim::PimConfig pim;
    pim.numDpus =
        static_cast<std::size_t>(flags.getInt("cores", 256));
    pim.hostThreads =
        static_cast<unsigned>(flags.getInt("host-threads", 0));
    // Fault injection (off by default): --fault-rate covers transient
    // kernel faults and wire corruption, --dropout-rate permanent
    // core loss; draws are seeded by --fault-seed, so a run's fault
    // sequence — and its recovered Q-table — is reproducible.
    pim.faultPlan.seed =
        static_cast<std::uint64_t>(flags.getInt("fault-seed", 1));
    const double fault_rate = flags.getDouble("fault-rate", 0.0);
    pim.faultPlan.transientRate = fault_rate;
    pim.faultPlan.corruptRate = fault_rate;
    pim.faultPlan.dropoutRate = flags.getDouble("dropout-rate", 0.0);
    pimsim::PimSystem system(pim);

    // Telemetry: enabled only when an export was requested, so
    // default runs construct nothing but an inert registry. The
    // trainers see a null registry pointer in that case and skip
    // collector attachment entirely.
    const bool want_metrics =
        !flags.getString("metrics", "").empty() ||
        !flags.getString("metrics-prom", "").empty();
    telemetry::MetricRegistry metrics(want_metrics);
    auto manifest = telemetry::RunManifest::fromSystem(system);
    manifest.tool = "swiftrl_cli";
    manifest.environment = env_name;

    RetryPolicy retry;
    retry.limit = static_cast<int>(flags.getInt("retry-limit", 3));
    if (pim.faultPlan.enabled()) {
        std::cout << "fault injection:  rate " << fault_rate
                  << ", dropout " << pim.faultPlan.dropoutRate
                  << ", seed " << pim.faultPlan.seed
                  << ", retry limit " << retry.limit << "\n";
    }

    // Workload, shared by both modes.
    Workload workload;
    workload.algo =
        rlcore::parseAlgorithm(flags.getString("algo", "qlearning"));
    workload.sampling =
        rlcore::parseSampling(flags.getString("sampling", "seq"));
    workload.format =
        rlcore::parseNumericFormat(flags.getString("format", "int32"));

    rlcore::Hyper hyper;
    hyper.episodes = static_cast<int>(flags.getInt("episodes", 100));
    hyper.alpha = static_cast<float>(flags.getDouble("alpha", 0.1));
    hyper.gamma = static_cast<float>(flags.getDouble("gamma", 0.95));
    hyper.epsilon =
        static_cast<float>(flags.getDouble("epsilon", 0.05));
    hyper.seed =
        static_cast<std::uint64_t>(flags.getInt("seed", 1)) + 41;

    const auto transitions = static_cast<std::size_t>(
        flags.getInt("transitions", 100'000));

    if (flags.getBool("streaming", false)) {
        // --- streaming actor–learner mode ---------------------------
        if (flags.getBool("weighted", false))
            SWIFTRL_FATAL("--weighted is not available in streaming "
                          "mode");
        if (flags.getInt("shards", 0) > 0)
            SWIFTRL_FATAL("--shards is offline-only; streaming "
                          "generations replicate the whole table");
        if (!flags.getString("checkpoint", "").empty() ||
            !flags.getString("restore", "").empty()) {
            SWIFTRL_FATAL("--checkpoint/--restore drive the offline "
                          "trainer; streaming runs restore through "
                          "the TrainerSession API instead");
        }
        StreamingConfig cfg;
        cfg.workload = workload;
        cfg.hyper = hyper;
        cfg.generations =
            static_cast<int>(flags.getInt("generations", 8));
        // --episodes and --transitions are run totals in both modes;
        // streaming splits them evenly across the generations.
        cfg.hyper.episodes =
            std::max(1, hyper.episodes / std::max(1, cfg.generations));
        cfg.transitionsPerGeneration =
            transitions /
            static_cast<std::size_t>(std::max(1, cfg.generations));
        cfg.tau = static_cast<int>(flags.getInt("tau", 50));
        if (cfg.tau > cfg.hyper.episodes)
            cfg.tau = cfg.hyper.episodes;
        cfg.tasklets =
            static_cast<unsigned>(flags.getInt("tasklets", 1));
        cfg.batchExec = flags.getBool("batch-exec", cfg.batchExec);
        cfg.actors = static_cast<unsigned>(flags.getInt("actors", 1));
        cfg.refreshPeriod =
            static_cast<int>(flags.getInt("refresh-period", 0));
        cfg.collectSeed =
            static_cast<std::uint64_t>(flags.getInt("seed", 1)) + 977;
        cfg.retry = retry;
        cfg.metrics = want_metrics ? &metrics : nullptr;

        manifest.mode = "streaming";
        manifest.workload = cfg.workload.name();
        manifest.tasklets = cfg.tasklets;
        manifest.episodes = cfg.hyper.episodes;
        manifest.tau = cfg.tau;
        manifest.transitions = cfg.transitionsPerGeneration;
        manifest.generations = cfg.generations;
        manifest.actors = cfg.actors;
        manifest.refreshPeriod = cfg.refreshPeriod;
        manifest.alpha = cfg.hyper.alpha;
        manifest.gamma = cfg.hyper.gamma;
        manifest.epsilon = cfg.hyper.epsilon;
        manifest.collectSeed = cfg.collectSeed;
        manifest.trainSeed = cfg.hyper.seed;
        manifest.retryLimit = retry.limit;

        std::cout << "streaming " << cfg.workload.name() << " on "
                  << pim.numDpus << " PIM cores, " << cfg.generations
                  << " generations x " << cfg.transitionsPerGeneration
                  << " transitions, " << cfg.actors
                  << " actor(s), refresh-period=" << cfg.refreshPeriod
                  << "\n";

        StreamingTrainer trainer(system, cfg);
        const auto result = trainer.train(
            [&env_name] { return rlenv::makeEnvironment(env_name); },
            env->numStates(), env->numActions());

        std::cout << "\n--- results ---\n"
                  << "end-to-end:       " << result.endToEnd << " s"
                  << " (PIM pipeline " << result.time.total()
                  << ", host collect " << result.time.hostCollect
                  << " overlapped)\n"
                  << "breakdown:        kernel " << result.time.kernel
                  << ", cpu->pim " << result.time.cpuToPim
                  << ", pim->cpu " << result.time.pimToCpu
                  << ", inter-core " << result.time.interCore << "\n"
                  << "comm rounds:      " << result.commRounds
                  << ", policy refreshes " << result.policyRefreshes
                  << ", transitions " << result.transitions << "\n";
        if (pim.faultPlan.enabled()) {
            std::cout << "recovery:         "
                      << result.faultsDetected << " fault(s), "
                      << result.coresLost << " core(s) lost, "
                      << result.time.recovery
                      << " s recovery overhead\n";
        }
        return finishRun(flags, *env, result.finalQ, result.timeline,
                         system, metrics, manifest);
    }

    // --- offline (paper) mode ---------------------------------------
    // Dataset: load a checkpoint or collect fresh.
    rlcore::Dataset data;
    const auto load_path = flags.getString("load-dataset", "");
    if (!load_path.empty()) {
        data = rlcore::loadDataset(load_path);
        std::cout << "loaded " << data.size() << " transitions from "
                  << load_path << "\n";
    } else {
        data = rlcore::collectRandomDataset(
            *env, transitions,
            static_cast<std::uint64_t>(flags.getInt("seed", 1)));
        std::cout << "collected " << data.size()
                  << " transitions from " << env_name << "\n";
    }
    const auto save_data = flags.getString("save-dataset", "");
    if (!save_data.empty()) {
        rlcore::saveDataset(data, save_data);
        std::cout << "dataset saved to " << save_data << "\n";
    }

    PimTrainConfig cfg;
    cfg.workload = workload;
    cfg.hyper = hyper;
    cfg.tau = static_cast<int>(flags.getInt("tau", 50));
    if (cfg.tau > cfg.hyper.episodes)
        cfg.tau = cfg.hyper.episodes;
    cfg.tasklets =
        static_cast<unsigned>(flags.getInt("tasklets", 1));
    // --batch-exec 0/1: override the build default (SWIFTRL_BATCH_EXEC)
    // for the lockstep batch interpreter. Bit-identical results; host
    // wall-clock only.
    cfg.batchExec = flags.getBool("batch-exec", cfg.batchExec);
    cfg.weightedAggregation = flags.getBool("weighted", false);
    // --shards S: partition the Q-table into S contiguous state
    // ranges with replicated slices per core group — the path for
    // procedurally scaled environments (--env lake:64, mptaxi:8x3)
    // whose tables outgrow whole-table replication.
    cfg.shards = static_cast<std::size_t>(flags.getInt("shards", 0));
    if (cfg.shards > 0 && cfg.weightedAggregation)
        SWIFTRL_FATAL("--shards and --weighted are incompatible "
                      "(sharded aggregation has no visit counts)");
    cfg.retry = retry;
    cfg.metrics = want_metrics ? &metrics : nullptr;

    manifest.mode = "offline";
    manifest.workload = cfg.workload.name();
    manifest.tasklets = cfg.tasklets;
    manifest.episodes = cfg.hyper.episodes;
    manifest.tau = cfg.tau;
    manifest.transitions = data.size();
    manifest.weightedAggregation = cfg.weightedAggregation;
    manifest.alpha = cfg.hyper.alpha;
    manifest.gamma = cfg.hyper.gamma;
    manifest.epsilon = cfg.hyper.epsilon;
    manifest.collectSeed =
        static_cast<std::uint64_t>(flags.getInt("seed", 1));
    manifest.trainSeed = cfg.hyper.seed;
    manifest.retryLimit = retry.limit;

    std::cout << "training " << cfg.workload.name() << " on "
              << pim.numDpus << " PIM cores x " << cfg.tasklets
              << " tasklet(s), " << cfg.hyper.episodes
              << " episodes, tau=" << cfg.tau << "\n";

    PimTrainer trainer(system, cfg);

    // --checkpoint PATH [--pause-round N]: train to round boundary N,
    // persist the session checkpoint, and stop — no retrieval, no
    // evaluation. A later invocation with the same configuration and
    // dataset flags plus --restore PATH continues bit-identically to
    // an uninterrupted run (tests/test_session.cc proves it).
    const auto checkpoint_path = flags.getString("checkpoint", "");
    const auto restore_path = flags.getString("restore", "");
    if (!checkpoint_path.empty()) {
        if (!restore_path.empty())
            SWIFTRL_FATAL("--checkpoint and --restore are one-at-a-"
                          "time: pause a run or continue one");
        const auto rounds =
            static_cast<int>(flags.getInt("pause-round", 1));
        if (rounds < 1)
            SWIFTRL_FATAL("--pause-round must be >= 1, got ", rounds);
        const auto ck = trainer.trainUntilRound(
            data, env->numStates(), env->numActions(), rounds);
        saveCheckpoint(ck, checkpoint_path);
        std::cout << "checkpoint written to " << checkpoint_path
                  << " after " << ck.commRounds << " round(s); "
                  << "resume with --restore " << checkpoint_path
                  << "\n";
        return writeTraceOutputs(flags);
    }

    const auto result =
        restore_path.empty()
            ? trainer.train(data, env->numStates(), env->numActions())
            : trainer.resume(data, env->numStates(),
                             env->numActions(),
                             loadCheckpoint(restore_path));
    if (!restore_path.empty())
        std::cout << "restored session from " << restore_path << "\n";

    std::cout << "\n--- results ---\n"
              << "modelled time:    " << result.time.total() << " s"
              << " (kernel " << result.time.kernel << ", cpu->pim "
              << result.time.cpuToPim << ", pim->cpu "
              << result.time.pimToCpu << ", inter-core "
              << result.time.interCore << ")\n"
              << "comm rounds:      " << result.commRounds << "\n";
    if (pim.faultPlan.enabled()) {
        std::cout << "recovery:         " << result.faultsDetected
                  << " fault(s), " << result.coresLost
                  << " core(s) lost, " << result.time.recovery
                  << " s recovery overhead\n";
    }
    return finishRun(flags, *env, result.finalQ, result.timeline,
                     system, metrics, manifest);
}
