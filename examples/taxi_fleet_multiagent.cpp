/**
 * @file
 * Multi-agent taxi fleet: the paper's Sec. 3.2.1 / 4.4 scenario on
 * the richer environment. Each taxi (agent) logs its own experience
 * dataset; one agent is pinned to each PIM core; all agents train
 * independent Q-tables concurrently with no inter-core communication;
 * the host retrieves every agent's policy at the end.
 *
 * Run: ./build/examples/taxi_fleet_multiagent [--agents N]
 *      [--transitions T] [--episodes E]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "swiftrl/swiftrl.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;

    const common::CliFlags flags(argc, argv,
                                 {"agents", "transitions",
                                  "episodes"});
    const auto agents =
        static_cast<std::size_t>(flags.getInt("agents", 64));
    const auto transitions = static_cast<std::size_t>(
        flags.getInt("transitions", 100'000));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", 10));

    std::cout << "taxi fleet: " << agents << " independent agents, "
              << transitions << " private transitions each, "
              << episodes << " episodes\n\n";

    // Each taxi logs its own experiences (distinct seeds = distinct
    // shifts/routes).
    std::vector<rlcore::Dataset> fleet_data;
    fleet_data.reserve(agents);
    for (std::size_t i = 0; i < agents; ++i) {
        auto env = rlenv::makeEnvironment("taxi");
        fleet_data.push_back(rlcore::collectRandomDataset(
            *env, transitions, 500 + i));
    }

    pimsim::PimConfig pim;
    pim.numDpus = agents; // one agent per PIM core
    pimsim::PimSystem system(pim);

    PimTrainConfig cfg;
    cfg.workload = Workload{rlcore::Algorithm::QLearning,
                            rlcore::Sampling::Seq,
                            rlcore::NumericFormat::Int32};
    cfg.hyper.episodes = episodes;
    PimTrainer trainer(system, cfg);

    auto probe_env = rlenv::makeEnvironment("taxi");
    const auto result = trainer.trainMultiAgent(
        fleet_data, probe_env->numStates(), probe_env->numActions());

    // Evaluate every agent's private policy.
    common::RunningStat fleet;
    std::vector<double> rewards;
    for (std::size_t i = 0; i < agents; ++i) {
        auto env = rlenv::makeEnvironment("taxi");
        const auto eval = rlcore::evaluateGreedy(
            *env, result.perCore[i], 200, 7);
        fleet.add(eval.meanReward);
        rewards.push_back(eval.meanReward);
    }

    TextTable t("Fleet results");
    t.setHeader({"metric", "value"});
    t.addRow({"agents trained",
              TextTable::num(static_cast<long long>(agents))});
    t.addRow({"mean reward (fleet avg)",
              TextTable::num(fleet.mean(), 2)});
    t.addRow({"best agent", TextTable::num(fleet.max(), 2)});
    t.addRow({"worst agent", TextTable::num(fleet.min(), 2)});
    t.addRow({"median agent",
              TextTable::num(common::percentile(rewards, 50), 2)});
    t.addRow({"modelled kernel time",
              TextTable::num(result.time.kernel, 3) + " s"});
    t.addRow({"comm rounds (independent learners)",
              TextTable::num(static_cast<long long>(
                  result.commRounds))});
    t.print(std::cout);

    std::cout << "\nnote: a converged taxi policy averages ~+8 "
                 "(13-step ride + 20 dropoff); undertrained agents "
                 "sit lower. Increase --episodes/--transitions to "
                 "push the whole fleet up.\n";
    return 0;
}
