/**
 * @file
 * Instruction-mix study: what do the PIM cores actually spend cycles
 * on? Runs the FP32 and INT32 Q-learning kernels and dumps the
 * simulator's per-op-class statistics — making the paper's central
 * observation ("instruction emulation by the runtime library" costs
 * the FP32 kernels their performance) directly visible.
 *
 * Run: ./build/examples/pim_instruction_mix [--transitions N]
 */

#include <iostream>

#include "common/cli.hh"
#include "pimsim/stats_report.hh"
#include "swiftrl/swiftrl.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv, {"transitions"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 50'000));

    auto env = rlenv::makeEnvironment("frozenlake");
    const auto data = rlcore::collectRandomDataset(*env, n, 1);

    for (const auto format :
         {NumericFormat::Fp32, NumericFormat::Int32,
          NumericFormat::Int8}) {
        pimsim::PimConfig pim;
        pim.numDpus = 64;
        pimsim::PimSystem system(pim);

        PimTrainConfig cfg;
        cfg.workload =
            Workload{Algorithm::QLearning, Sampling::Seq, format};
        cfg.hyper.episodes = 5;
        cfg.tau = 5;
        PimTrainer trainer(system, cfg);
        trainer.train(data, env->numStates(), env->numActions());

        const auto report = pimsim::StatsReport::fromSystem(system);
        report.print(std::cout,
                     std::string("Instruction mix: Q-learner-SEQ-") +
                         rlcore::numericFormatName(format));
        std::cout << "\n";
    }

    std::cout << "reading: the FP32 kernel burns the vast majority "
                 "of its cycles in softfloat emulation (fp32_add/"
                 "mul/cmp); the INT32 scaling optimisation shifts "
                 "the mix to cheap native ALU ops plus a few "
                 "emulated multiplies; INT8 removes even those. "
                 "The measured arithmetic intensity (ops per DMA "
                 "byte) confirms the workload stays memory-light "
                 "per transition, matching Fig. 2's roofline "
                 "placement.\n";
    return 0;
}
