/**
 * @file
 * Ablation A1 (ours): how sensitive are the paper-shape conclusions
 * to the DPU cost-model calibration?
 *
 * Sweeps (a) the FP32 software-emulation cost, (b) the single-tasklet
 * pipeline interval, and (c) the host scatter overhead, and reports
 * the two conclusions that must survive: INT32 beats FP32 on-core,
 * and kernel scaling stays near-linear.
 */

#include <iostream>

#include "bench/bench_common.hh"

namespace {

using namespace swiftrl;
using common::TextTable;
using rlcore::Algorithm;
using rlcore::NumericFormat;
using rlcore::Sampling;

/** Kernel seconds for one workload on a customised system. */
double
kernelSeconds(const pimsim::PimConfig &pim_cfg,
              const rlcore::Dataset &data, NumericFormat format)
{
    pimsim::PimSystem system(pim_cfg);
    PimTrainConfig cfg;
    cfg.workload =
        Workload{Algorithm::QLearning, Sampling::Seq, format};
    cfg.hyper.episodes = 5;
    cfg.tau = 5;
    PimTrainer trainer(system, cfg);
    return trainer.train(data, 16, 4).time.kernel;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(argc, argv, {"transitions"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 20'000));

    bench::banner("Ablation A1: cost-model sensitivity", false,
                  "Q-learner-SEQ, frozen lake, n=" +
                      std::to_string(n) + ", 64 cores, 5 episodes");

    const auto data = bench::collectDataset("frozenlake", n, 1);

    // --- (a) FP32 emulation cost sweep --------------------------------
    TextTable a("FP32 emulation cost sweep (multiplier on fp32 "
                "add/mul/div/cmp instruction counts)");
    a.setHeader({"fp32 cost x", "FP32 kernel s", "INT32 kernel s",
                 "INT32 speedup"});
    bool int32_always_wins = true;
    for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        pimsim::PimConfig cfg;
        cfg.numDpus = 64;
        using pimsim::OpClass;
        for (const auto op :
             {OpClass::Fp32Add, OpClass::Fp32Mul, OpClass::Fp32Div,
              OpClass::Fp32Cmp}) {
            auto &slot =
                cfg.costModel
                    .instructions[static_cast<std::size_t>(op)];
            slot = std::max<pimsim::Cycles>(
                1, static_cast<pimsim::Cycles>(
                       static_cast<double>(slot) * mult));
        }
        const double fp =
            kernelSeconds(cfg, data, NumericFormat::Fp32);
        const double fx =
            kernelSeconds(cfg, data, NumericFormat::Int32);
        int32_always_wins &= fx < fp;
        a.addRow({TextTable::num(mult, 2), TextTable::num(fp, 3),
                  TextTable::num(fx, 3),
                  TextTable::speedup(fp / fx, 2)});
    }
    a.print(std::cout);

    // --- (b) pipeline interval sweep -----------------------------------
    TextTable b("Pipeline interval sweep (cycles per retired "
                "instruction at 1 tasklet)");
    b.setHeader({"interval", "FP32 kernel s", "INT32 speedup"});
    for (const pimsim::Cycles interval : {1ull, 6ull, 11ull, 14ull}) {
        pimsim::PimConfig cfg;
        cfg.numDpus = 64;
        cfg.costModel.pipelineInterval = interval;
        const double fp =
            kernelSeconds(cfg, data, NumericFormat::Fp32);
        const double fx =
            kernelSeconds(cfg, data, NumericFormat::Int32);
        int32_always_wins &= fx < fp;
        b.addRow({TextTable::num(static_cast<long long>(interval)),
                  TextTable::num(fp, 3),
                  TextTable::speedup(fp / fx, 2)});
    }
    b.print(std::cout);

    // --- (c) scatter overhead sweep ------------------------------------
    TextTable c("Host scatter overhead sweep (per-DPU cost of the "
                "initial chunk distribution, 2000 cores; share "
                "computed against a 2000-episode kernel)");
    c.setHeader({"scatter us/DPU", "setup s", "setup share of "
                                              "setup+kernel"});
    const auto big_data = bench::collectDataset("frozenlake",
                                                100'000, 1);
    for (const double us : {0.0, 50.0, 100.0, 500.0}) {
        pimsim::PimConfig cfg;
        cfg.numDpus = 2000;
        cfg.transferModel.scatterPerDpuSec = us * 1e-6;
        pimsim::PimSystem system(cfg);
        PimTrainConfig tcfg;
        tcfg.workload = Workload{Algorithm::QLearning, Sampling::Str,
                                 NumericFormat::Int32};
        tcfg.hyper.episodes = 5;
        tcfg.tau = 5;
        PimTrainer trainer(system, tcfg);
        const auto r = trainer.train(big_data, 16, 4);
        // Kernel time is linear in episodes: extrapolate the 5
        // simulated episodes to the paper's 2,000 before taking the
        // share, as Figure 5 would see it.
        const double kernel_full = r.time.kernel * (2000.0 / 5.0);
        const double share =
            r.time.cpuToPim / (r.time.cpuToPim + kernel_full);
        c.addRow({TextTable::num(us, 0),
                  TextTable::num(r.time.cpuToPim, 3),
                  TextTable::percent(share, 1)});
    }
    c.print(std::cout);

    std::cout << "\nconclusion check (INT32 faster than FP32 at every "
                 "calibration): "
              << (int32_always_wins ? "ROBUST" : "SENSITIVE") << "\n";
    return 0;
}
