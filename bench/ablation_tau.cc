/**
 * @file
 * Ablation A2 (ours): the synchronisation period tau beyond the
 * paper's {10, 25, 50} — the quality-vs-communication tradeoff of
 * federated tabular Q-learning on PIM.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "rlcore/evaluate.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv,
                                 {"transitions", "episodes",
                                  "cores"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 500'000));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", 100));
    const auto cores =
        static_cast<std::size_t>(flags.getInt("cores", 16));

    bench::banner("Ablation A2: synchronisation period tau sweep",
                  false,
                  "Q-learner-SEQ-INT32, frozen lake, n=" +
                      std::to_string(n) + ", episodes=" +
                      std::to_string(episodes) + ", cores=" +
                      std::to_string(cores));

    const auto data = bench::collectDataset("frozenlake", n, 1);

    TextTable t("Quality and communication vs tau");
    t.setHeader({"tau", "comm rounds", "mean reward",
                 "inter-core s", "inter-core share"});
    for (const int tau : {2, 5, 10, 25, 50, 100}) {
        if (tau > episodes)
            break;
        auto system = bench::makePimSystem(cores);
        PimTrainConfig cfg;
        cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                                NumericFormat::Int32};
        cfg.hyper.episodes = episodes;
        cfg.tau = tau;
        PimTrainer trainer(system, cfg);
        const auto r = trainer.train(data, 16, 4);

        auto eval_env = rlenv::makeEnvironment("frozenlake");
        const auto eval =
            rlcore::evaluateGreedy(*eval_env, r.finalQ, 1000, 7);

        t.addRow({TextTable::num(static_cast<long long>(tau)),
                  TextTable::num(static_cast<long long>(
                      r.commRounds)),
                  TextTable::num(eval.meanReward, 4),
                  TextTable::num(r.time.interCore, 4),
                  TextTable::percent(
                      r.time.fractionOf(r.time.interCore), 1)});
    }
    t.print(std::cout);

    std::cout << "\nreading: smaller tau buys (at most marginal) "
                 "quality for linearly more inter-core "
                 "communication; at convergence the paper's tau=50 "
                 "is quality-neutral and cheapest.\n";
    return 0;
}
