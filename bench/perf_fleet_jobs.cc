/**
 * @file
 * Fleet-scheduler throughput benchmark: jobs per hour of modelled
 * fleet time for multi-tenant job mixes on a shared rank pool
 * (src/fleet), plus the host wall-clock cost of simulating them.
 *
 * Two scenarios:
 *  - "two-tenant/contended": six jobs from two tenants oversubscribe
 *    a four-rank fleet with staggered arrivals, forcing quantum
 *    preemptions and fair-share arbitration.
 *  - "three-tenant/backfill": jobs whose min_ranks sits below their
 *    logical width, so the scheduler hands out shrunken (dilated)
 *    grants and backfills around a wide job.
 *
 * The headline number (jobs/hour) is **modelled** — derived from the
 * fleet-clock makespan — so it is bit-identical on every machine;
 * only wall_sec varies per host. The bench asserts the scheduler's
 * determinism contract before writing a single row: every job's final
 * Q-table must be bit-identical to the same spec run standalone on a
 * dedicated machine, each scenario must involve >= 2 tenants, and the
 * contended scenario must actually preempt. The modelled slots
 * tools/bench_compare.py verifies carry: sim_ops = total
 * communication rounds, dma_bytes = Q-table bytes moved by grants and
 * preemption checkpoints, modelled_max_cycles = an FNV digest of
 * every final Q-table bit pattern — a scheduling change that moved a
 * learned value fails CI even at equal speed.
 *
 * Results go to JSON (default BENCH_fleet_jobs.json); CI runs --smoke
 * and diffs against the recorded run (see .github/workflows/ci.yml).
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "common/stopwatch.hh"
#include "fleet/job_spec.hh"
#include "fleet/scheduler.hh"

namespace {

using namespace swiftrl;
using common::TextTable;

/** One benchmark scenario: a fleet plus its job mix. */
struct Scenario
{
    std::string name;
    fleet::FleetConfig config;
    std::vector<fleet::JobSpec> jobs;
    bool expectPreemption = false;
};

/** One measured row. */
struct FleetRow
{
    std::string name;
    std::size_t jobCount = 0;
    std::size_t tenantCount = 0;
    double wallSec = 0.0;
    double makespanSec = 0.0;
    double jobsPerHour = 0.0;
    double occupancy = 0.0;
    int preemptions = 0;
    std::uint64_t simOps = 0;   ///< total communication rounds
    std::uint64_t dmaBytes = 0; ///< Q bytes moved by grants + ckpts
    std::uint64_t digest = 0;   ///< FNV digest of all final Q-tables
};

fleet::JobSpec
makeJob(const std::string &id, const std::string &tenant,
        const std::string &env, std::size_t ranks,
        std::size_t min_ranks, int episodes, double arrival_sec,
        std::uint64_t seed)
{
    fleet::JobSpec job;
    job.id = id;
    job.tenant = tenant;
    job.env = env;
    job.ranks = ranks;
    job.minRanks = min_ranks;
    job.hyper.episodes = episodes;
    job.tau = 10;
    job.transitions = 4'000;
    job.arrivalSec = arrival_sec;
    job.collectSeed = seed;
    job.hyper.seed = seed + 41;
    return job;
}

std::vector<Scenario>
scenarios(bool smoke)
{
    // Smoke halves the episode budgets; the schedule shape (who
    // preempts whom) is budget-dependent, so smoke and full each pin
    // their own recorded digests.
    const int e = smoke ? 40 : 80;

    Scenario contended;
    contended.name = "two-tenant/contended";
    contended.config.totalRanks = 4;
    contended.config.dpusPerRank = 4;
    contended.config.quantumRounds = 2;
    contended.config.tenantWeights = {{"research", 2.0},
                                      {"prod", 1.0}};
    contended.expectPreemption = true;
    contended.jobs = {
        makeJob("fl-r1", "research", "frozenlake", 2, 0, e, 0.0, 11),
        makeJob("fl-r2", "research", "frozenlake", 2, 0, e, 0.0, 12),
        makeJob("fl-p1", "prod", "frozenlake", 2, 0, e, 0.0, 13),
        makeJob("fl-p2", "prod", "frozenlake", 4, 2, e, 0.001, 14),
        makeJob("tx-r3", "research", "taxi", 2, 1, e / 2, 0.002, 15),
        makeJob("tx-p3", "prod", "taxi", 2, 1, e / 2, 0.002, 16),
    };

    Scenario backfill;
    backfill.name = "three-tenant/backfill";
    backfill.config.totalRanks = 4;
    backfill.config.dpusPerRank = 4;
    backfill.config.quantumRounds = 4;
    backfill.config.tenantWeights = {{"research", 1.0},
                                     {"prod", 1.0},
                                     {"batch", 0.5}};
    backfill.jobs = {
        makeJob("wide", "prod", "frozenlake", 4, 1, e, 0.0, 21),
        makeJob("narrow-1", "research", "frozenlake", 1, 0, e, 0.0,
                22),
        makeJob("narrow-2", "batch", "frozenlake", 1, 0, e, 0.0, 23),
        makeJob("late", "batch", "taxi", 2, 1, e / 2, 0.005, 24),
    };

    return {contended, backfill};
}

/** FNV-1a over the bit patterns of every final Q-table, job order. */
std::uint64_t
digestOutcomes(const std::vector<fleet::JobOutcome> &jobs)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const auto &job : jobs) {
        for (const float v : job.finalQ.values()) {
            std::uint32_t bits;
            static_assert(sizeof bits == sizeof v);
            __builtin_memcpy(&bits, &v, sizeof bits);
            for (int i = 0; i < 4; ++i) {
                hash ^= (bits >> (8 * i)) & 0xffu;
                hash *= 0x100000001b3ull;
            }
        }
    }
    return (hash ^ (hash >> 32)) & 0xffffffffull;
}

/** Run one scenario, verify its claims, and measure it. */
bool
measureScenario(const Scenario &scenario, FleetRow &row)
{
    row.name = scenario.name;
    row.jobCount = scenario.jobs.size();

    common::Stopwatch wall;
    fleet::FleetScheduler scheduler(scenario.config);
    const auto result = scheduler.run(scenario.jobs);
    row.wallSec = wall.seconds();

    std::vector<std::string> tenants;
    for (const auto &job : result.jobs) {
        if (std::find(tenants.begin(), tenants.end(), job.tenant) ==
            tenants.end())
            tenants.push_back(job.tenant);
        row.simOps += static_cast<std::uint64_t>(job.commRounds);
        // Q bytes cross the host boundary once per grant (the
        // restore/initial broadcast) and once per preemption (the
        // checkpointed aggregate).
        row.dmaBytes +=
            static_cast<std::uint64_t>(job.finalQ.values().size()) *
            4 *
            static_cast<std::uint64_t>(job.grants + job.preemptions);
    }
    row.tenantCount = tenants.size();
    row.makespanSec = result.makespanSec;
    row.jobsPerHour = result.jobsPerHour();
    row.occupancy = result.occupancy();
    row.preemptions = result.totalPreemptions;
    row.digest = digestOutcomes(result.jobs);

    if (row.tenantCount < 2) {
        std::cerr << scenario.name << ": expected >= 2 tenants, got "
                  << row.tenantCount << "\n";
        return false;
    }
    if (scenario.expectPreemption && result.totalPreemptions == 0) {
        std::cerr << scenario.name
                  << ": expected at least one preemption\n";
        return false;
    }
    // The determinism contract: every job's fleet result must be
    // bit-identical to the same spec run alone on its own machine.
    for (std::size_t i = 0; i < scenario.jobs.size(); ++i) {
        const auto standalone = fleet::FleetScheduler::runStandalone(
            scenario.jobs[i], scenario.config);
        if (result.jobs[i].finalQ.values() !=
            standalone.finalQ.values()) {
            std::cerr << scenario.name << ": job "
                      << scenario.jobs[i].id
                      << " diverged from its standalone run — "
                         "scheduling moved a learned value\n";
            return false;
        }
    }
    return true;
}

bool
writeJson(const std::string &path, const std::string &mode,
          const std::vector<FleetRow> &rows)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"bench\": \"perf_fleet_jobs\",\n"
        << "  \"mode\": \"" << mode << "\",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        out << "    {\n"
            << "      \"name\": \"" << r.name << "\",\n"
            << "      \"jobs\": " << r.jobCount << ",\n"
            << "      \"tenants\": " << r.tenantCount << ",\n"
            << "      \"wall_sec\": " << r.wallSec << ",\n"
            << "      \"makespan_sec\": " << r.makespanSec << ",\n"
            << "      \"jobs_per_hour\": " << r.jobsPerHour << ",\n"
            << "      \"occupancy\": " << r.occupancy << ",\n"
            << "      \"preemptions\": " << r.preemptions << ",\n"
            << "      \"sim_ops\": " << r.simOps << ",\n"
            << "      \"dma_bytes\": " << r.dmaBytes << ",\n"
            << "      \"modelled_max_cycles\": " << r.digest << "\n"
            << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(argc, argv, {"smoke", "json"});

    const bool smoke = flags.getBool("smoke", false);
    const std::string json_path =
        flags.getString("json", "BENCH_fleet_jobs.json");

    bench::banner("Fleet scheduling throughput (modelled jobs/hour)",
                  !smoke,
                  std::string("episodes=") + (smoke ? "40" : "80") +
                      ", 4 ranks x 4 cores");

    std::vector<FleetRow> rows;
    for (const auto &scenario : scenarios(smoke)) {
        FleetRow row;
        if (!measureScenario(scenario, row))
            return 1;
        rows.push_back(row);
    }

    TextTable t("Fleet scheduling (modelled time)");
    t.setHeader({"scenario", "jobs", "tenants", "makespan s",
                 "jobs/h", "occup", "preempt", "wall s"});
    for (const auto &r : rows) {
        t.addRow({r.name, std::to_string(r.jobCount),
                  std::to_string(r.tenantCount),
                  TextTable::num(r.makespanSec, 4),
                  TextTable::num(r.jobsPerHour, 0),
                  TextTable::num(r.occupancy, 3),
                  std::to_string(r.preemptions),
                  TextTable::num(r.wallSec, 3)});
    }
    t.print(std::cout);
    std::cout << "\nall final Q-tables bit-identical to standalone "
                 "runs; bench_compare verifies the digests\n";

    if (!writeJson(json_path, smoke ? "smoke" : "full", rows)) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    std::cout << "results written to " << json_path << "\n";
    return 0;
}
