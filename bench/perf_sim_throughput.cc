/**
 * @file
 * Wall-clock throughput benchmark of the simulation engine itself.
 *
 * Every other harness in bench/ reports *modelled* PIM time; this one
 * measures how fast the host simulates it. It runs a fixed set of
 * fig5/fig6-shaped workloads (frozen lake and taxi, 2,000 cores, one
 * tau-episode communication round — the shape of every point in the
 * strong-scaling figures) and reports, per workload:
 *
 *   - wall_sec            best-of-reps host wall-clock for one round
 *   - sim_ops/sec         priced instruction charges simulated per
 *                         second (sum of per-core op counts / wall)
 *   - updates/sec         Q-table updates simulated per second
 *   - launches/sec        kernel launches issued per second
 *
 * Results are written as JSON (default BENCH_sim_throughput.json) so
 * the engine's perf trajectory is tracked across PRs; diff two files
 * with tools/bench_compare.py. Pass --smoke for a CI-sized run.
 *
 * Modelled results are independent of engine speed by the determinism
 * contract (docs/ARCHITECTURE.md §5); as a guard, the harness also
 * prints each workload's modelled max-cycle count so a perf change
 * that altered modelled numbers would be visible immediately.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "common/stopwatch.hh"
#include "pimsim/device_counters.hh"

namespace {

using namespace swiftrl;
using common::TextTable;

/** One fixed benchmark shape. */
struct PerfCase
{
    std::string figure; ///< "fig5" or "fig6"
    std::string env;
    Workload workload;
};

/** One measured row. */
struct PerfResult
{
    std::string name;
    PerfCase shape;
    std::size_t cores = 0;
    std::size_t transitions = 0;
    int episodes = 0;
    int reps = 0;
    unsigned hostThreads = 0;
    double wallSec = 0.0;
    std::uint64_t simOps = 0;
    std::uint64_t dmaBytes = 0;
    std::uint64_t updates = 0;
    std::uint64_t launches = 0;
    pimsim::Cycles maxCycles = 0; ///< modelled; determinism guard
};

std::vector<PerfCase>
perfCases()
{
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;
    // The INT8 variants run on frozen lake only: taxi's value range
    // violates the narrow-multiply applicability condition.
    return {
        {"fig5", "frozenlake",
         {Algorithm::QLearning, Sampling::Seq, NumericFormat::Fp32}},
        {"fig5", "frozenlake",
         {Algorithm::QLearning, Sampling::Ran, NumericFormat::Fp32}},
        {"fig5", "frozenlake",
         {Algorithm::QLearning, Sampling::Seq, NumericFormat::Int32}},
        {"fig5", "frozenlake",
         {Algorithm::QLearning, Sampling::Str, NumericFormat::Int8}},
        {"fig6", "taxi",
         {Algorithm::QLearning, Sampling::Seq, NumericFormat::Fp32}},
        {"fig6", "taxi",
         {Algorithm::Sarsa, Sampling::Ran, NumericFormat::Int32}},
    };
}

PerfResult
measureCase(const PerfCase &shape, const rlcore::Dataset &data,
            rlcore::StateId num_states, rlcore::ActionId num_actions,
            std::size_t cores, int tau, int reps,
            unsigned host_threads, bool batch_exec)
{
    PerfResult r;
    r.shape = shape;
    r.cores = cores;
    r.transitions = data.size();
    r.episodes = tau;
    r.reps = reps;
    r.name = shape.figure + "-" + shape.env + "/" +
             shape.workload.name() + "/" + std::to_string(cores) + "c";

    for (int rep = 0; rep < reps; ++rep) {
        auto system = bench::makePimSystem(cores, host_threads);
        PimTrainConfig cfg;
        cfg.workload = shape.workload;
        cfg.hyper.episodes = tau; // one communication round
        cfg.tau = tau;
        cfg.batchExec = batch_exec;
        PimTrainer trainer(system, cfg);

        common::Stopwatch wall;
        const auto result =
            trainer.train(data, num_states, num_actions);
        const double sec = wall.seconds();
        SWIFTRL_ASSERT(result.commRounds == 1,
                       "throughput shapes simulate a single round");

        if (rep == 0 || sec < r.wallSec) {
            r.wallSec = sec;
        }
        if (rep == 0) {
            // Same snapshot path telemetry and StatsReport read —
            // the reported sim_ops/dma_bytes can never drift from
            // what a --metrics run exports.
            const auto counters =
                pimsim::DeviceCounters::fromSystem(system);
            r.simOps = counters.totalOps();
            r.dmaBytes = counters.dmaBytes;
            r.updates = static_cast<std::uint64_t>(data.size()) *
                        static_cast<std::uint64_t>(tau);
            r.launches =
                static_cast<std::uint64_t>(result.commRounds);
            r.maxCycles = system.maxCycles();
            r.hostThreads = system.hostThreadCount();
        }
    }
    return r;
}

/** One thread-sweep point: the same shape at a given pool size. */
struct SweepPoint
{
    unsigned hostThreads = 0;
    double wallSec = 0.0;
};

void
writeRow(std::ostream &out, const PerfResult &r, const char *indent,
         bool last)
{
    const double ops_per_sec = static_cast<double>(r.simOps) / r.wallSec;
    const double updates_per_sec =
        static_cast<double>(r.updates) / r.wallSec;
    const double launches_per_sec =
        static_cast<double>(r.launches) / r.wallSec;
    out << indent << "{\n"
        << indent << "  \"name\": \"" << r.name << "\",\n"
        << indent << "  \"figure\": \"" << r.shape.figure << "\",\n"
        << indent << "  \"env\": \"" << r.shape.env << "\",\n"
        << indent << "  \"workload\": \"" << r.shape.workload.name()
        << "\",\n"
        << indent << "  \"cores\": " << r.cores << ",\n"
        << indent << "  \"transitions\": " << r.transitions << ",\n"
        << indent << "  \"episodes\": " << r.episodes << ",\n"
        << indent << "  \"reps\": " << r.reps << ",\n"
        << indent << "  \"host_threads\": " << r.hostThreads << ",\n"
        << indent << "  \"wall_sec\": " << r.wallSec << ",\n"
        << indent << "  \"sim_ops\": " << r.simOps << ",\n"
        << indent << "  \"sim_ops_per_sec\": " << ops_per_sec << ",\n"
        << indent << "  \"dma_bytes\": " << r.dmaBytes << ",\n"
        << indent << "  \"updates\": " << r.updates << ",\n"
        << indent << "  \"updates_per_sec\": " << updates_per_sec
        << ",\n"
        << indent << "  \"launches\": " << r.launches << ",\n"
        << indent << "  \"launches_per_sec\": " << launches_per_sec
        << ",\n"
        << indent << "  \"modelled_max_cycles\": " << r.maxCycles
        << "\n"
        << indent << "}" << (last ? "" : ",") << "\n";
}

bool
writeJson(const std::string &path, const std::string &mode,
          bool batch_exec, const std::vector<PerfResult> &rows,
          const std::string &sweep_name,
          const std::vector<SweepPoint> &sweep)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"bench\": \"perf_sim_throughput\",\n"
        << "  \"mode\": \"" << mode << "\",\n"
        << "  \"batch_exec\": " << (batch_exec ? "true" : "false")
        << ",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i)
        writeRow(out, rows[i], "    ", i + 1 == rows.size());
    out << "  ]";
    if (!sweep.empty()) {
        // Host-pool scaling of one representative shape: same
        // modelled run at each pool size, so the points differ in
        // wall-clock only.
        out << ",\n  \"thread_sweep\": {\n"
            << "    \"name\": \"" << sweep_name << "\",\n"
            << "    \"points\": [\n";
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            out << "      {\"host_threads\": "
                << sweep[i].hostThreads << ", \"wall_sec\": "
                << sweep[i].wallSec << "}"
                << (i + 1 < sweep.size() ? "," : "") << "\n";
        }
        out << "    ]\n  }";
    }
    out << "\n}\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(
        argc, argv,
        {"smoke", "json", "reps", "cores", "transitions", "tau",
         "host-threads", "batch-exec", "sweep"});

    const bool smoke = flags.getBool("smoke", false);
    // Full shapes mirror one strong-scaling point at the paper's
    // largest sweep size; smoke keeps CI runs in seconds.
    const std::size_t cores = static_cast<std::size_t>(
        flags.getInt("cores", smoke ? 250 : 2000));
    const std::size_t transitions = static_cast<std::size_t>(
        flags.getInt("transitions", smoke ? 20'000 : 100'000));
    const int tau =
        static_cast<int>(flags.getInt("tau", smoke ? 10 : 50));
    const int reps =
        static_cast<int>(flags.getInt("reps", smoke ? 1 : 3));
    const unsigned host_threads =
        static_cast<unsigned>(flags.getInt("host-threads", 0));
    // --batch-exec 0/1 overrides the build default
    // (SWIFTRL_BATCH_EXEC): run eligible launches through the
    // lockstep batch interpreter. Modelled outputs are bit-identical
    // either way; only wall_sec moves.
    const bool batch_exec =
        flags.getBool("batch-exec", PimTrainConfig{}.batchExec);
    // --sweep 0 skips the host-pool scaling points (they rerun the
    // first workload once per pool size).
    const bool sweep_enabled = flags.getBool("sweep", true);
    const std::string json_path =
        flags.getString("json", "BENCH_sim_throughput.json");

    bench::banner(
        "Simulation-engine throughput (host wall-clock)", !smoke,
        "cores=" + std::to_string(cores) +
            ", transitions=" + std::to_string(transitions) +
            ", tau=" + std::to_string(tau) + " (1 round), reps=" +
            std::to_string(reps));

    std::vector<PerfResult> rows;
    std::string dataset_env;
    rlcore::Dataset data;
    for (const auto &shape : perfCases()) {
        if (shape.env != dataset_env) {
            data = bench::collectDataset(shape.env, transitions, 1);
            dataset_env = shape.env;
        }
        auto env = rlenv::makeEnvironment(shape.env);
        rows.push_back(measureCase(shape, data, env->numStates(),
                                   env->numActions(), cores, tau,
                                   reps, host_threads, batch_exec));
    }

    // Host-pool scaling sweep (1 / 2 / hardware threads) of the first
    // shape. Modelled results are pool-size-invariant, so the points
    // record pure host scaling.
    std::vector<SweepPoint> sweep;
    std::string sweep_name;
    if (sweep_enabled) {
        std::vector<unsigned> pools{
            1u, 2u, std::max(1u, std::thread::hardware_concurrency())};
        std::sort(pools.begin(), pools.end());
        pools.erase(std::unique(pools.begin(), pools.end()),
                    pools.end());
        const auto shape = perfCases().front();
        const auto sweep_data =
            bench::collectDataset(shape.env, transitions, 1);
        auto env = rlenv::makeEnvironment(shape.env);
        for (const unsigned pool : pools) {
            const auto r = measureCase(
                shape, sweep_data, env->numStates(),
                env->numActions(), cores, tau, /*reps=*/1, pool,
                batch_exec);
            sweep.push_back({r.hostThreads, r.wallSec});
            sweep_name = r.name;
        }
    }

    TextTable t("Host throughput per workload (best of reps)");
    t.setHeader({"workload", "wall s", "Mops/s", "Mupd/s",
                 "launch/s"});
    for (const auto &r : rows) {
        t.addRow({r.name, TextTable::num(r.wallSec, 3),
                  TextTable::num(static_cast<double>(r.simOps) /
                                     r.wallSec / 1e6,
                                 2),
                  TextTable::num(static_cast<double>(r.updates) /
                                     r.wallSec / 1e6,
                                 3),
                  TextTable::num(static_cast<double>(r.launches) /
                                     r.wallSec,
                                 2)});
    }
    t.print(std::cout);
    std::cout << "\nhost threads: " << rows.front().hostThreads
              << ", batch-exec: " << (batch_exec ? "on" : "off")
              << " (modelled results are engine-invariant)\n";
    for (const auto &p : sweep)
        std::cout << "sweep " << sweep_name << ": " << p.hostThreads
                  << " thread(s) -> " << p.wallSec << " s\n";

    if (!writeJson(json_path, smoke ? "smoke" : "full", batch_exec,
                   rows, sweep_name, sweep)) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    std::cout << "results written to " << json_path << "\n";
    return 0;
}
