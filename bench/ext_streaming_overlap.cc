/**
 * @file
 * Extension E6: streaming actor–learner overlap.
 *
 * The paper's flow is strictly offline: collect the whole dataset,
 * then train (Sec. 3.2.1). The streaming extension pipelines the two
 * — CPU actors collect generation k+1 while the PIM side trains
 * generation k — so most of the host collection time hides under PIM
 * kernel time. This harness quantifies the hiding: the same
 * generation schedule runs once with overlap and once strictly
 * sequentially (StreamingConfig::overlap=false), at *equal transition
 * counts and bit-identical final Q-tables* (overlap changes only the
 * timing gates), and the table reports the modelled end-to-end
 * speedup across actor-thread counts.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hh"
#include "rlcore/collection.hh"
#include "rlcore/qtable.hh"
#include "rlenv/registry.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(
        argc, argv, {"full", "cores", "generations", "transitions"});
    const bool full = flags.getBool("full", false);
    const auto cores = static_cast<std::size_t>(
        flags.getInt("cores", full ? 500 : 64));
    const auto generations =
        static_cast<int>(flags.getInt("generations", 8));
    const auto per_gen = static_cast<std::size_t>(flags.getInt(
        "transitions", full ? 50'000 : 8'192));

    bench::banner(
        "Extension E6: streaming collect/train overlap",
        full,
        "taxi, Q-learner-SEQ-INT32, " + std::to_string(generations) +
            " generations x " + std::to_string(per_gen) +
            " transitions, cores=" + std::to_string(cores) +
            ", refresh-period=2");

    const std::string env_name = "taxi";
    auto probe = rlenv::makeEnvironment(env_name);
    const auto num_states = probe->numStates();
    const auto num_actions = probe->numActions();

    const auto run = [&](unsigned actors, bool overlap, int episodes,
                         unsigned tasklets, std::size_t run_cores,
                         std::size_t run_per_gen) {
        auto system = bench::makePimSystem(run_cores);
        StreamingConfig cfg;
        cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                                NumericFormat::Int32};
        cfg.hyper.episodes = episodes;
        cfg.tau = std::min(10, episodes);
        cfg.generations = generations;
        cfg.transitionsPerGeneration = run_per_gen;
        cfg.actors = actors;
        cfg.tasklets = tasklets;
        cfg.refreshPeriod = 2;
        cfg.overlap = overlap;
        StreamingTrainer trainer(system, cfg);
        return trainer.train(
            [&env_name] { return rlenv::makeEnvironment(env_name); },
            num_states, num_actions);
    };
    const int episodes_per_gen = full ? 50 : 20;

    TextTable t("Modelled end-to-end time, overlap vs sequential "
                "(equal transitions, bit-identical Q)");
    t.setHeader({"actors", "sequential (s)", "streaming (s)",
                 "hidden collect (s)", "speedup"});

    bool all_faster = true;
    bool all_identical = true;
    for (const unsigned actors : {1u, 2u, 4u, 8u}) {
        const auto seq = run(actors, /*overlap=*/false,
                             episodes_per_gen, 1, cores, per_gen);
        const auto str = run(actors, /*overlap=*/true,
                             episodes_per_gen, 1, cores, per_gen);
        all_faster = all_faster && str.endToEnd < seq.endToEnd;
        all_identical =
            all_identical &&
            rlcore::QTable::maxAbsDifference(seq.finalQ, str.finalQ) ==
                0.0f;
        t.addRow({TextTable::num(static_cast<long long>(actors)),
                  TextTable::num(seq.endToEnd, 4),
                  TextTable::num(str.endToEnd, 4),
                  TextTable::num(seq.endToEnd - str.endToEnd, 4),
                  TextTable::speedup(seq.endToEnd / str.endToEnd, 2)});
    }
    t.print(std::cout);

    // Second regime: few cores, many transitions, max useful
    // tasklets, short per-generation training — collection is no
    // longer negligible against the PIM pipeline, so the overlap
    // saving grows toward the collection share of the schedule.
    const std::size_t cores2 = 8;
    const std::size_t per_gen2 = per_gen * 4;
    TextTable t2("Actor-bound regime: " + std::to_string(cores2) +
                 " cores, " + std::to_string(per_gen2) +
                 " transitions/gen, 16 tasklets, 1 actor");
    t2.setHeader({"episodes/gen", "sequential (s)", "streaming (s)",
                  "collect share", "speedup"});
    for (const int episodes : {1, 2, 5, episodes_per_gen}) {
        const auto seq = run(1, /*overlap=*/false, episodes, 16,
                             cores2, per_gen2);
        const auto str = run(1, /*overlap=*/true, episodes, 16,
                             cores2, per_gen2);
        all_faster = all_faster && str.endToEnd < seq.endToEnd;
        all_identical =
            all_identical &&
            rlcore::QTable::maxAbsDifference(seq.finalQ, str.finalQ) ==
                0.0f;
        t2.addRow(
            {TextTable::num(static_cast<long long>(episodes)),
             TextTable::num(seq.endToEnd, 4),
             TextTable::num(str.endToEnd, 4),
             TextTable::num(seq.collectSeconds / seq.endToEnd, 2),
             TextTable::speedup(seq.endToEnd / str.endToEnd, 2)});
    }
    t2.print(std::cout);

    std::cout << "\nclaim check: streaming strictly faster at every "
                 "actor count: "
              << (all_faster ? "yes" : "NO — REGRESSION")
              << "; final Q bit-identical to sequential: "
              << (all_identical ? "yes" : "NO — REGRESSION") << "\n";

    std::cout
        << "\nreading: with one actor the entire collection of "
           "generations 2..N hides under the previous generation's "
           "kernels, so the saving approaches the total collect time "
           "minus the first (unhideable) generation. More actors "
           "shrink each collection slice itself, which reduces the "
           "absolute saving but keeps the streaming run strictly "
           "faster; the speedup is purely schedule overlap — the "
           "functional command order, and therefore the learned "
           "Q-table, is identical in both modes.\n";
    return all_faster && all_identical ? 0 : 1;
}
