/**
 * @file
 * Ablation A3 (ours): where does the paper's fixed-point scheme stop
 * working? The INT32 update truncates alpha * delta / scale toward
 * zero, so TD errors below scale/(alpha*scale) raw units apply *no*
 * update — a dead zone that widens as alpha shrinks. At the paper's
 * alpha = 0.1 the dead zone is |delta| < 10 raw = 1e-3 real
 * (harmless); at alpha = 0.001 it is 0.1 real (fatal for frozen
 * lake's value gaps). This sweep maps quality against alpha for FP32
 * vs INT32 so users know the safe operating region.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "rlcore/evaluate.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv,
                                 {"transitions", "episodes"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 1'000'000));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", 30));

    bench::banner(
        "Ablation A3: alpha vs INT32 quantisation dead zone", false,
        "frozen lake, n=" + std::to_string(n) + ", episodes=" +
            std::to_string(episodes) +
            ", scale=10000, Q-learner-SEQ, CPU reference trainers");

    auto env = rlenv::makeEnvironment("frozenlake");
    const auto data = rlcore::collectRandomDataset(*env, n, 1);

    TextTable t("Mean reward vs learning rate (optimum ~0.73)");
    t.setHeader({"alpha", "dead zone (real units)", "FP32",
                 "INT32", "INT32 healthy?"});
    for (const float alpha :
         {0.2f, 0.1f, 0.05f, 0.01f, 0.005f, 0.001f}) {
        rlcore::Hyper h;
        h.alpha = alpha;
        h.episodes = episodes;

        double mean[2];
        int slot = 0;
        for (const auto format :
             {NumericFormat::Fp32, NumericFormat::Int32}) {
            const auto q = rlcore::trainCpuReference(
                Algorithm::QLearning, data, env->numStates(),
                env->numActions(), h, Sampling::Seq, format);
            auto eval_env = rlenv::makeEnvironment("frozenlake");
            mean[slot++] = rlcore::evaluateGreedy(*eval_env, q, 1000,
                                                  7)
                               .meanReward;
        }

        // Smallest |delta| (in real units) that still moves Q:
        // alpha_scaled * delta_raw >= scale.
        const auto alpha_scaled = static_cast<double>(
            static_cast<std::int32_t>(alpha * 10000.0f + 0.5f));
        const double dead_zone =
            alpha_scaled > 0.0
                ? 1.0 / alpha_scaled
                : std::numeric_limits<double>::infinity();

        t.addRow({TextTable::num(alpha, 3),
                  TextTable::num(dead_zone, 4),
                  TextTable::num(mean[0], 3),
                  TextTable::num(mean[1], 3),
                  mean[1] > mean[0] - 0.1 ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout
        << "\nreading: the paper's alpha = 0.1 sits comfortably in "
           "the healthy region (dead zone 1e-3). Below alpha ~0.005 "
           "the truncated fixed-point step zeroes out small TD "
           "errors and INT32 quality falls away from FP32 — choose "
           "the scale factor jointly with the learning rate.\n";
    return 0;
}
