/**
 * @file
 * Table 1 reproduction: the evaluated system configurations — the
 * modelled UPMEM-like PIM system and the two analytic comparison
 * platforms — exactly as this repository parameterises them.
 */

#include <iostream>

#include "baselines/platform_model.hh"
#include "bench/bench_common.hh"

int
main()
{
    using swiftrl::common::TextTable;
    namespace baselines = swiftrl::baselines;

    swiftrl::bench::banner("Table 1: evaluated system specifications",
                           true, "static configuration inventory");

    const auto pim_cfg = swiftrl::pimsim::PimConfig{};
    const auto cpu = baselines::xeonSilver4110();
    const auto gpu = baselines::rtx3090();

    TextTable t("Evaluated systems (paper Table 1 vs. this model)");
    t.setHeader({"metric", "UPMEM PIM (modelled)",
                 "Xeon Silver 4110 (modelled)",
                 "RTX 3090 (modelled)"});
    t.addRow({"total cores", "2,524 available; 125-2000 used",
              "8 (16 threads)", "82 SMs (10,496 lanes)"});
    t.addRow({"frequency",
              TextTable::num(pim_cfg.costModel.frequencyHz / 1e6, 0) +
                  " MHz",
              "2.4 GHz (3.0 turbo)", "1.70 GHz"});
    t.addRow({"peak performance", "1,088 GOPS",
              TextTable::num(cpu.peakGflops, 0) + " GFLOPS",
              TextTable::num(gpu.peakGflops, 0) + " GFLOPS"});
    t.addRow({"memory", "158 GB (64 MB MRAM/core)", "132 GB",
              "24 GB"});
    t.addRow({"aggregate bandwidth", "2,145 GB/s (near-bank)",
              TextTable::num(cpu.memBandwidthBytes / 1e9, 1) + " GB/s",
              TextTable::num(gpu.memBandwidthBytes / 1e9, 1) +
                  " GB/s"});
    t.addRow({"per-core scratchpad",
              TextTable::num(static_cast<long long>(
                  pim_cfg.wramBytesPerDpu / 1024)) +
                  " KB WRAM",
              "-", "-"});
    t.print(std::cout);

    const auto &m = pim_cfg.costModel;
    TextTable c("Modelled DPU instruction costs (instructions/op; "
                "1 instruction = " +
                TextTable::num(static_cast<long long>(
                    m.pipelineInterval)) +
                " cycles at 1 tasklet)");
    c.setHeader({"op class", "instructions"});
    using swiftrl::pimsim::OpClass;
    for (std::size_t i = 0; i < swiftrl::pimsim::kNumOpClasses; ++i) {
        const auto op = static_cast<OpClass>(i);
        c.addRow({swiftrl::pimsim::opClassName(op),
                  TextTable::num(static_cast<long long>(
                      m.instructions[i]))});
    }
    c.addRow({"mram dma",
              TextTable::num(static_cast<long long>(
                  m.mramDmaFixedCycles)) +
                  " cycles + " +
                  TextTable::num(m.mramDmaCyclesPerByte, 1) +
                  " cycles/B"});
    c.print(std::cout);
    return 0;
}
