/**
 * @file
 * Section 4.4 reproduction: multi-agent Q-learning. 1,000 and 2,000
 * independent agents, each with a private 10,000-transition frozen
 * lake dataset, trained for 2,000 episodes — one agent pinned per PIM
 * core — against a CPU baseline running the same independent
 * learners.
 *
 * Paper anchors: CPU 996.52 s (1,000 agents) and 1,943.78 s (2,000
 * agents); PIM speedups 11.23x and 21.92x respectively.
 */

#include <iostream>

#include "baselines/platform_model.hh"
#include "bench/bench_common.hh"

namespace {

using namespace swiftrl;
using common::TextTable;
using rlcore::Algorithm;
using rlcore::Dataset;
using rlcore::NumericFormat;
using rlcore::Sampling;

constexpr std::size_t kTransitionsPerAgent = 10'000;
constexpr int kEpisodes = 2000;

/**
 * PIM multi-agent time, projected to the full episode count (one
 * launch is simulated with a reduced episode count; kernel time is
 * linear in episodes, transfers are one-off).
 */
double
pimMultiAgentSeconds(std::size_t agents, int simulated_episodes)
{
    std::vector<Dataset> data;
    data.reserve(agents);
    for (std::size_t i = 0; i < agents; ++i) {
        // Agents log individual experiences: distinct seeds.
        auto env = rlenv::makeEnvironment("frozenlake");
        data.push_back(rlcore::collectRandomDataset(
            *env, kTransitionsPerAgent, 1000 + i));
    }

    auto system = bench::makePimSystem(agents);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = simulated_episodes;
    PimTrainer trainer(system, cfg);
    const auto r = trainer.trainMultiAgent(data, 16, 4);

    const double episode_scale = static_cast<double>(kEpisodes) /
                                 static_cast<double>(
                                     simulated_episodes);
    return r.time.kernel * episode_scale + r.time.cpuToPim +
           r.time.pimToCpu;
}

/**
 * CPU baseline: the paper's multiple independent tabular Q-learners
 * on the Xeon, swept sequentially. The paper's own numbers imply a
 * serial loop — 996.5 s for 2e10 updates is ~20M updates/s, one
 * thread's worth, and the time doubles linearly from 1,000 to 2,000
 * agents — so the model prices the combined update stream at the
 * single-thread dependent-chain latency.
 */
double
cpuMultiAgentSeconds(std::size_t agents)
{
    const swiftrl::baselines::CpuModelParams params;
    const auto mix = swiftrl::baselines::updateOpMix(
        Algorithm::QLearning, 4);
    const double per_update_ns =
        params.baseLatencyNs + mix.flops * params.flopLatencyNs;
    const double updates = static_cast<double>(agents) *
                           static_cast<double>(kTransitionsPerAgent) *
                           static_cast<double>(kEpisodes);
    return updates * per_update_ns * 1e-9;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(argc, argv,
                                 {"full", "sim-episodes"});
    const bool full = flags.getBool("full", false);
    const int sim_episodes =
        static_cast<int>(flags.getInt("sim-episodes", full ? 20 : 2));

    bench::banner(
        "Section 4.4: multi-agent Q-learning (independent learners)",
        full,
        "10,000 transitions/agent, 2,000 episodes (simulating " +
            std::to_string(sim_episodes) +
            " and extrapolating), INT32, one agent per PIM core");

    struct Anchor
    {
        std::size_t agents;
        double paperCpu;
        double paperSpeedup;
    };
    const std::vector<Anchor> anchors = {
        {1000, 996.52, 11.23},
        {2000, 1943.78, 21.92},
    };

    TextTable t("Multi-agent training time");
    t.setHeader({"agents", "CPU (model) s", "CPU (paper) s",
                 "PIM (sim) s", "speedup", "paper speedup"});
    bool all_speedups_positive = true;
    for (const auto &a : anchors) {
        const double cpu = cpuMultiAgentSeconds(a.agents);
        const double pim =
            pimMultiAgentSeconds(a.agents, sim_episodes);
        const double speedup = cpu / pim;
        all_speedups_positive &= speedup > 8.0;
        t.addRow({TextTable::num(static_cast<long long>(a.agents)),
                  TextTable::num(cpu, 1),
                  TextTable::num(a.paperCpu, 1),
                  TextTable::num(pim, 1),
                  TextTable::speedup(speedup, 2),
                  TextTable::speedup(a.paperSpeedup, 2)});
    }
    t.print(std::cout);

    std::cout << "\npaper claim check (PIM provides order-of-"
                 "magnitude speedup via agent-level parallelism): "
              << (all_speedups_positive ? "REPRODUCED"
                                        : "NOT reproduced")
              << "\n";
    return all_speedups_positive ? 0 : 1;
}
