/**
 * @file
 * Shared implementation of the strong-scaling figures (Figures 5 and
 * 6): run all 12 workload variants across the paper's PIM core counts
 * on a fixed dataset, print the four-way execution-time breakdown,
 * and check the paper's headline claims.
 *
 * Episode extrapolation: training cost is exactly linear in
 * communication rounds — every tau-episode round performs identical
 * work (same chunk sweeps, same Q-table synchronisation) — so the
 * harness simulates one round (tau episodes) and scales the kernel
 * and inter-core components by Comm_rounds = episodes/tau. The
 * CPU->PIM setup and final PIM->CPU retrieval are one-off costs and
 * are not scaled. This keeps the functional simulation affordable
 * while reporting the paper's full 2,000-episode configuration.
 */

#ifndef SWIFTRL_BENCH_SCALING_COMMON_HH
#define SWIFTRL_BENCH_SCALING_COMMON_HH

#include <iostream>

#include "bench/bench_common.hh"
#include "common/stats.hh"
#include "common/stopwatch.hh"

namespace swiftrl::bench {

/** One measured configuration. */
struct ScalingPoint
{
    Workload workload;
    std::size_t cores = 0;
    TimeBreakdown time; ///< extrapolated to the full episode count
    unsigned hostThreads = 0; ///< resolved simulation pool size
};

/** Parameters of one scaling figure. */
struct ScalingFigureConfig
{
    std::string experimentName;
    std::string envName;
    std::size_t transitions = 100'000;
    int episodes = 2000; ///< reported episode count (paper: 2,000)
    int tau = 50;        ///< synchronisation period (paper: 50)
    int stride = 4;      ///< STR stride (paper: 4)
    bool fullScale = false;
    std::vector<std::size_t> coreCounts = kPaperCoreCounts;

    /** Simulation pool size (0 = hardware concurrency). */
    unsigned hostThreads = 0;

    /**
     * When non-empty, the command timeline of one representative run
     * (first workload at the largest core count) is exported here as
     * Chrome trace JSON.
     */
    std::string tracePath;
};

/** Run one workload at one core count; extrapolate to episodes. */
inline ScalingPoint
measureScalingPoint(const ScalingFigureConfig &fig,
                    const rlcore::Dataset &data,
                    rlcore::StateId num_states,
                    rlcore::ActionId num_actions,
                    const Workload &workload, std::size_t cores,
                    pimsim::Timeline *timeline_out = nullptr)
{
    auto system = makePimSystem(cores, fig.hostThreads);
    PimTrainConfig cfg;
    cfg.workload = workload;
    cfg.hyper.episodes = fig.tau; // one communication round
    cfg.hyper.stride = fig.stride;
    cfg.tau = fig.tau;
    PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, num_states, num_actions);
    SWIFTRL_ASSERT(result.commRounds == 1,
                   "extrapolation expects a single simulated round");
    if (timeline_out != nullptr)
        *timeline_out = result.timeline;

    const double rounds = static_cast<double>(fig.episodes) /
                          static_cast<double>(fig.tau);
    ScalingPoint point;
    point.workload = workload;
    point.cores = cores;
    point.time.kernel = result.time.kernel * rounds;
    point.time.interCore = result.time.interCore * rounds;
    point.time.cpuToPim = result.time.cpuToPim;
    point.time.pimToCpu = result.time.pimToCpu;
    point.hostThreads = system.hostThreadCount();
    return point;
}

/** Execute and print a whole scaling figure; returns exit status. */
inline int
runScalingFigure(const ScalingFigureConfig &fig)
{
    using common::TextTable;

    banner(fig.experimentName, fig.fullScale,
           "env=" + fig.envName +
               ", transitions=" + std::to_string(fig.transitions) +
               ", episodes=" + std::to_string(fig.episodes) +
               " (1 round simulated, extrapolated), tau=" +
               std::to_string(fig.tau) +
               ", stride=" + std::to_string(fig.stride));

    auto env = rlenv::makeEnvironment(fig.envName);
    const auto data =
        collectDataset(fig.envName, fig.transitions, 1);

    TextTable t("Execution time breakdown (seconds, modelled)");
    t.setHeader({"workload", "cores", "kernel", "cpu->pim",
                 "pim->cpu", "inter-core", "total"});

    common::RunningStat speedups;
    double worst_intercore_frac = 0.0;
    std::string worst_intercore_cfg;
    pimsim::Timeline trace; ///< representative run, see tracePath
    std::string trace_run;
    unsigned pool_threads = 0;
    common::Stopwatch wall;

    bool first_workload = true;
    for (const auto &workload : allWorkloads()) {
        std::vector<double> cores_x, kernel_y;
        for (const auto cores : fig.coreCounts) {
            const bool want_trace = !fig.tracePath.empty() &&
                                    first_workload &&
                                    cores == fig.coreCounts.back();
            const auto p = measureScalingPoint(
                fig, data, env->numStates(), env->numActions(),
                workload, cores,
                want_trace ? &trace : nullptr);
            if (want_trace)
                trace_run = workload.name() + " @" +
                            std::to_string(cores) + " cores";
            pool_threads = p.hostThreads;
            t.addRow({workload.name(),
                      TextTable::num(static_cast<long long>(cores)),
                      TextTable::num(p.time.kernel, 3),
                      TextTable::num(p.time.cpuToPim, 3),
                      TextTable::num(p.time.pimToCpu, 3),
                      TextTable::num(p.time.interCore, 3),
                      TextTable::num(p.time.total(), 3)});
            cores_x.push_back(static_cast<double>(cores));
            kernel_y.push_back(p.time.kernel);
            const double frac =
                p.time.fractionOf(p.time.interCore);
            if (frac > worst_intercore_frac) {
                worst_intercore_frac = frac;
                worst_intercore_cfg =
                    workload.name() + " @" + std::to_string(cores);
            }
        }
        t.addRule();
        speedups.add(kernel_y.front() / kernel_y.back());
        first_workload = false;
    }
    t.print(std::cout);

    std::cout << "\nsimulation wall-clock: "
              << TextTable::num(wall.seconds(), 2) << " s ("
              << pool_threads << " host thread(s); results are "
              << "bit-identical for any pool size)\n";
    if (!fig.tracePath.empty()) {
        if (trace.writeChromeTrace(fig.tracePath)) {
            std::cout << "trace of " << trace_run << " (1 round) "
                      << "written to " << fig.tracePath << " ("
                      << trace.size() << " commands)\n";
        } else {
            std::cerr << "cannot write trace file " << fig.tracePath
                      << "\n";
        }
    }

    const double mean_speedup = speedups.mean();
    std::cout << "\nkernel-time speedup " << fig.coreCounts.front()
              << " -> " << fig.coreCounts.back()
              << " cores, averaged over all 12 workloads: "
              << TextTable::speedup(mean_speedup, 2)
              << " (paper: >15x for 16x cores)\n"
              << "largest inter-PIM-core share of total: "
              << TextTable::percent(worst_intercore_frac, 2) << " ("
              << worst_intercore_cfg << ")\n";

    const bool reproduced = mean_speedup > 15.0;
    std::cout << "paper claim check (near-linear scaling >15x): "
              << (reproduced ? "REPRODUCED" : "NOT reproduced")
              << "\n";
    return reproduced ? 0 : 1;
}

} // namespace swiftrl::bench

#endif // SWIFTRL_BENCH_SCALING_COMMON_HH
