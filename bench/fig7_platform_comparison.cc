/**
 * @file
 * Figure 7 reproduction: training-phase execution time of the PIM
 * implementation (2,000 cores, FP32 and INT32) against the CPU-V1,
 * CPU-V2, and GPU baselines on frozen lake and taxi.
 *
 * PIM times come from the cycle-accurate simulation, projected to the
 * paper's dataset/episode scale (training cost is linear in both; see
 * scaling_common.hh for the round-extrapolation argument). CPU and
 * GPU times come from the calibrated analytic models of
 * baselines/platform_model.hh (see DESIGN.md Sec. 1 for the
 * substitution rationale).
 *
 * Paper anchor ratios checked at the bottom:
 *   Q-SEQ-FP32-FL      1.84x faster than CPU-V1
 *   SARSA-SEQ-FP32-FL  2.08x faster than CPU-V1
 *   Q-RAN-FP32-FL      1.96x faster than CPU-V1
 *   taxi Q-FP32 (avg)  0.64x of CPU-V1 (i.e. slower)
 *   Q-SEQ-INT32-FL     8.16x faster than Q-SEQ-FP32-FL
 *   GPU                1.68x faster than Q-SEQ-FP32-FL
 *   Q-SEQ-INT32-FL     4.84x faster than GPU
 *   SARSA-SEQ-INT32-FL 4.73x faster than SARSA-SEQ-FP32-FL
 */

#include <iostream>
#include <map>

#include "baselines/platform_model.hh"
#include "bench/bench_common.hh"

namespace {

using namespace swiftrl;
using baselines::CpuModelParams;
using baselines::CpuVersion;
using baselines::estimateCpuSeconds;
using baselines::estimateGpuSeconds;
using baselines::GpuModelParams;
using common::TextTable;
using rlcore::Algorithm;
using rlcore::NumericFormat;
using rlcore::Sampling;

constexpr std::size_t kPimCores = 2000;
constexpr int kEpisodes = 2000;
constexpr int kTau = 50;

struct EnvSetup
{
    std::string name;
    std::size_t paperTransitions;
    std::size_t runTransitions;
};

/** PIM total seconds, projected to the paper's n and episodes. */
double
pimSeconds(const rlcore::Dataset &data, const EnvSetup &env_setup,
           rlenv::Environment &env, const Workload &workload)
{
    auto system = bench::makePimSystem(kPimCores);
    PimTrainConfig cfg;
    cfg.workload = workload;
    cfg.hyper.episodes = kTau; // one round simulated
    cfg.tau = kTau;
    PimTrainer trainer(system, cfg);
    const auto r =
        trainer.train(data, env.numStates(), env.numActions());

    const double rounds =
        static_cast<double>(kEpisodes) / static_cast<double>(kTau);
    const double data_scale =
        static_cast<double>(env_setup.paperTransitions) /
        static_cast<double>(env_setup.runTransitions);

    const double kernel = r.time.kernel * rounds * data_scale;
    const double inter = r.time.interCore * rounds;
    const std::size_t paper_bytes_per_dpu =
        (env_setup.paperTransitions + kPimCores - 1) / kPimCores * 16;
    const double setup =
        system.config().transferModel.scatterSeconds(
            paper_bytes_per_dpu, kPimCores);
    return kernel + inter + setup + r.time.pimToCpu;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(argc, argv,
                                 {"full", "lake-transitions",
                                  "taxi-transitions"});
    const bool full = flags.getBool("full", false);

    std::vector<EnvSetup> envs = {
        {"frozenlake", 1'000'000,
         static_cast<std::size_t>(flags.getInt(
             "lake-transitions", full ? 1'000'000 : 100'000))},
        {"taxi", 5'000'000,
         static_cast<std::size_t>(flags.getInt(
             "taxi-transitions", full ? 5'000'000 : 150'000))},
    };

    bench::banner(
        "Figure 7: CPU vs GPU vs PIM training time", full,
        "PIM cores=2000, episodes=2000, tau=50; CPU/GPU from "
        "calibrated analytic models at paper scale");

    const auto cpu_spec = baselines::xeonSilver4110();
    const auto gpu_spec = baselines::rtx3090();
    const CpuModelParams cpu_params;
    const GpuModelParams gpu_params;

    std::map<std::string, double> seconds; // "env/workload/platform"

    // Energy extension: Table 1 publishes component TDPs (PIM 280 W
    // for the full 2,524-DPU server, CPU 85 W, GPU 350 W) but the
    // paper reports no energy; time x attributable-TDP gives the
    // energy-proportional comparison its takeaways imply.
    const double pim_watts =
        pimsim::PimConfig{}.wattsInUse(kPimCores);

    TextTable t("Training-phase execution time (seconds; paper "
                "scale) and first-order energy (kJ = time x TDP)");
    t.setHeader({"env", "workload", "PIM", "CPU-V1", "CPU-V2", "GPU",
                 "PIM kJ", "CPU kJ", "GPU kJ"});

    for (const auto &env_setup : envs) {
        auto env = rlenv::makeEnvironment(env_setup.name);
        const auto data = bench::collectDataset(
            env_setup.name, env_setup.runTransitions, 1);
        const auto q_entries =
            static_cast<std::size_t>(env->numStates()) *
            static_cast<std::size_t>(env->numActions());

        for (const auto &workload : allWorkloads()) {
            const double pim =
                pimSeconds(data, env_setup, *env, workload);
            const double v1 = estimateCpuSeconds(
                cpu_spec, cpu_params, CpuVersion::V1, workload.algo,
                workload.sampling, env->numActions(), q_entries,
                env_setup.paperTransitions, kEpisodes);
            const double v2 = estimateCpuSeconds(
                cpu_spec, cpu_params, CpuVersion::V2, workload.algo,
                workload.sampling, env->numActions(), q_entries,
                env_setup.paperTransitions, kEpisodes);
            const double gpu = estimateGpuSeconds(
                gpu_spec, gpu_params, workload.algo,
                workload.sampling, env->numActions(), q_entries,
                env_setup.paperTransitions, kEpisodes);

            const std::string key =
                env_setup.name + "/" + workload.name();
            seconds[key + "/pim"] = pim;
            seconds[key + "/v1"] = v1;
            seconds[key + "/gpu"] = gpu;

            t.addRow({env_setup.name, workload.name(),
                      TextTable::num(pim, 1), TextTable::num(v1, 1),
                      TextTable::num(v2, 1), TextTable::num(gpu, 1),
                      TextTable::num(baselines::energyJoules(
                                         pim, pim_watts) /
                                         1000.0,
                                     2),
                      TextTable::num(baselines::energyJoules(
                                         v1, cpu_spec.tdpWatts) /
                                         1000.0,
                                     2),
                      TextTable::num(baselines::energyJoules(
                                         gpu, gpu_spec.tdpWatts) /
                                         1000.0,
                                     2)});
        }
        t.addRule();
    }
    t.print(std::cout);

    // --- anchor ratio checks -------------------------------------------
    auto s = [&](const std::string &key) { return seconds.at(key); };
    struct Check
    {
        std::string what;
        double measured;
        double paper;
    };
    const std::vector<Check> checks = {
        {"Q-SEQ-FP32-FL vs CPU-V1 (PIM faster)",
         s("frozenlake/Q-learner-SEQ-FP32/v1") /
             s("frozenlake/Q-learner-SEQ-FP32/pim"),
         1.84},
        {"SARSA-SEQ-FP32-FL vs CPU-V1 (PIM faster)",
         s("frozenlake/SARSA-SEQ-FP32/v1") /
             s("frozenlake/SARSA-SEQ-FP32/pim"),
         2.08},
        {"Q-RAN-FP32-FL vs CPU-V1 (PIM faster)",
         s("frozenlake/Q-learner-RAN-FP32/v1") /
             s("frozenlake/Q-learner-RAN-FP32/pim"),
         1.96},
        {"taxi Q-FP32 avg vs CPU-V1 (PIM slower: <1)",
         (s("taxi/Q-learner-SEQ-FP32/v1") /
              s("taxi/Q-learner-SEQ-FP32/pim") +
          s("taxi/Q-learner-RAN-FP32/v1") /
              s("taxi/Q-learner-RAN-FP32/pim") +
          s("taxi/Q-learner-STR-FP32/v1") /
              s("taxi/Q-learner-STR-FP32/pim")) /
             3.0,
         0.64},
        {"Q-SEQ-INT32-FL vs Q-SEQ-FP32-FL",
         s("frozenlake/Q-learner-SEQ-FP32/pim") /
             s("frozenlake/Q-learner-SEQ-INT32/pim"),
         8.16},
        {"GPU vs Q-SEQ-FP32-FL (GPU faster)",
         s("frozenlake/Q-learner-SEQ-FP32/pim") /
             s("frozenlake/Q-learner-SEQ-FP32/gpu"),
         1.68},
        {"Q-SEQ-INT32-FL vs GPU (PIM faster)",
         s("frozenlake/Q-learner-SEQ-FP32/gpu") /
             s("frozenlake/Q-learner-SEQ-INT32/pim"),
         4.84},
        {"SARSA-SEQ-INT32-FL vs SARSA-SEQ-FP32-FL",
         s("frozenlake/SARSA-SEQ-FP32/pim") /
             s("frozenlake/SARSA-SEQ-INT32/pim"),
         4.73},
    };

    TextTable c("Paper anchor ratios (shape check: same winner, "
                "comparable factor)");
    c.setHeader({"comparison", "measured", "paper", "same winner?"});
    bool all_winners_match = true;
    for (const auto &check : checks) {
        const bool same_side =
            (check.measured > 1.0) == (check.paper > 1.0);
        all_winners_match &= same_side;
        c.addRow({check.what, TextTable::speedup(check.measured, 2),
                  TextTable::speedup(check.paper, 2),
                  same_side ? "yes" : "NO"});
    }
    c.print(std::cout);

    std::cout << "\npaper claim check (every comparison's winner "
                 "matches): "
              << (all_winners_match ? "REPRODUCED" : "NOT reproduced")
              << "\n";
    return all_winners_match ? 0 : 1;
}
