/**
 * @file
 * Extension E1: the paper's *optional* UPMEM-specific optimisation
 * (Sec. 3.2.1) — replacing emulated 32-bit multiplications with the
 * DPU's native 8-bit multiplier via a power-of-two scale factor. The
 * paper describes but does not evaluate it ("may be adopted to boost
 * the training time further ... might only apply to some environments
 * (e.g., frozen lake) which have limited value range").
 *
 * This harness evaluates it: kernel time and training quality of the
 * INT8 path against FP32 and INT32 on frozen lake, plus the
 * quantisation cost of the coarser scale.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "rlcore/evaluate.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv,
                                 {"transitions", "episodes",
                                  "cores"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 200'000));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", 40));
    const auto cores =
        static_cast<std::size_t>(flags.getInt("cores", 64));

    bench::banner(
        "Extension E1: INT8 custom-multiply optimisation "
        "(Sec. 3.2.1, described but not evaluated by the paper)",
        false,
        "frozen lake, n=" + std::to_string(n) + ", episodes=" +
            std::to_string(episodes) + ", cores=" +
            std::to_string(cores) +
            ", INT8 scale=128 (power of two)");

    TextTable t("FP32 vs INT32 vs INT8 (Q-learner-SEQ; scale 128)");
    t.setHeader({"environment", "format", "kernel s",
                 "speedup vs FP32", "mean reward",
                 "quantisation step"});

    for (const auto &env_name :
         std::vector<std::string>{"frozenlake-det", "frozenlake"}) {
        auto env = rlenv::makeEnvironment(env_name);
        const auto data = rlcore::collectRandomDataset(*env, n, 1);

        double fp32_kernel = 0.0;
        for (const auto format :
             {NumericFormat::Fp32, NumericFormat::Int32,
              NumericFormat::Int8}) {
            auto system = bench::makePimSystem(cores);
            PimTrainConfig cfg;
            cfg.workload =
                Workload{Algorithm::QLearning, Sampling::Seq, format};
            cfg.hyper.episodes = episodes;
            cfg.tau = 20;
            PimTrainer trainer(system, cfg);
            const auto result = trainer.train(data, env->numStates(),
                                              env->numActions());
            const auto eval = rlcore::evaluateGreedy(
                *env, result.finalQ, 1000, 7);
            if (format == NumericFormat::Fp32)
                fp32_kernel = result.time.kernel;

            std::string step = "-";
            if (format == NumericFormat::Int32)
                step = "1/10000";
            else if (format == NumericFormat::Int8)
                step = "1/128";

            t.addRow({env_name,
                      rlcore::numericFormatName(format),
                      TextTable::num(result.time.kernel, 3),
                      TextTable::speedup(
                          fp32_kernel / result.time.kernel, 2),
                      TextTable::num(eval.meanReward, 4), step});
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout
        << "\nreading: the 8-bit multiplier path removes the last "
           "emulated multiplies, roughly doubling the INT32 "
           "speedup. The price is the coarse 1/128 step (8-bit "
           "constants cap the scale): the deterministic lake — whose "
           "value gaps are whole gamma-powers — trains at full "
           "quality, while the slippery lake's sub-1/128 value gaps "
           "lose ordering fidelity. That quantifies the paper's "
           "caveat that the optimisation 'might only apply to some "
           "environments'; taxi's value range does not even satisfy "
           "the operand-width precondition (the kernel checks at "
           "runtime).\n";
    return 0;
}
