/**
 * @file
 * Wall-clock throughput benchmark of the policy-serving frontend:
 * batched vs unbatched greedy-action QPS (src/serving).
 *
 * Like perf_sim_throughput, this measures the *host*, not the
 * modelled machine: concurrent client threads hammer a PolicyServer
 * with greedy-action queries and the harness reports queries per
 * second. Four workloads cross two client shapes (single-query
 * requests vs 16-query request chunks) with the two batcher
 * configurations (max_batch=1, the unbatched baseline, vs
 * max_batch=256 natural batching) — the batched/unbatched pair per
 * shape is the recorded QPS point. Batching pays off where the
 * per-request wakeup broadcast dominates: many single-query clients.
 * Clients that already chunk client-side see near-parity, since the
 * coalescing they would gain is already in their request shape.
 *
 * Wall-clock differs per machine; the *answers* may not. Each
 * workload also reports deterministic check fields in the modelled
 * slots tools/bench_compare.py verifies (sim_ops = queries issued,
 * dma_bytes = bytes crossing the ABI, modelled_max_cycles = an
 * order-independent FNV digest of every (state, action) pair), so a
 * serving change that altered any answer fails the comparison even
 * though batching is timing-nondeterministic.
 *
 * Results go to JSON (default BENCH_policy_qps.json); CI runs
 * --smoke and diffs against the recorded run.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "common/stopwatch.hh"
#include "serving/policy_server.hh"

namespace {

using namespace swiftrl;
using common::TextTable;

/** One benchmark shape: client request size x batcher config. */
struct QpsCase
{
    std::string name;
    std::size_t chunk = 1;    ///< queries per client request
    std::size_t maxBatch = 1; ///< server coalescing limit
    double maxWaitSec = 0.0;
};

/** One measured row. */
struct QpsResult
{
    QpsCase shape;
    unsigned clients = 0;
    std::uint64_t queries = 0; ///< total issued (= sim_ops)
    int reps = 0;
    double wallSec = 0.0;
    std::uint64_t batches = 0;
    std::uint64_t dmaBytes = 0;
    std::uint64_t digest = 0; ///< order-independent answer digest
};

std::vector<QpsCase>
qpsCases()
{
    // The batched rows use natural batching (no coalescing window):
    // the batch is whatever accumulated while the worker served the
    // previous flush. A positive max_wait would only help an
    // open-loop arrival stream; these clients are closed-loop
    // (blocking), so a window is pure added latency for them.
    return {
        {"single/unbatched", 1, 1, 0.0},
        {"single/batched", 1, 256, 0.0},
        {"chunk16/unbatched", 16, 1, 0.0},
        {"chunk16/batched", 16, 256, 0.0},
    };
}

/**
 * A deterministic taxi-shaped Q-table (500x6) filled from an LCG, so
 * every greedy action — and therefore the answer digest — is fixed
 * without a training run.
 */
rlcore::QTable
syntheticTable()
{
    rlcore::QTable q(500, 6);
    std::uint32_t lcg = 0x2545f491u;
    for (float &v : q.values()) {
        lcg = lcg * 1664525u + 1013904223u;
        v = static_cast<float>(lcg >> 8) / 16777216.0f;
    }
    return q;
}

/** FNV-1a over one (state, action) answer. */
std::uint64_t
answerHash(std::int32_t state, std::int32_t action)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto mix = [&hash](std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
            hash ^= (v >> (8 * i)) & 0xffu;
            hash *= 0x100000001b3ull;
        }
    };
    mix(static_cast<std::uint32_t>(state));
    mix(static_cast<std::uint32_t>(action));
    return hash;
}

QpsResult
measureCase(const QpsCase &shape, const rlcore::QTable &table,
            unsigned clients, std::uint64_t queries_per_client,
            int reps)
{
    QpsResult r;
    r.shape = shape;
    r.clients = clients;
    r.queries = queries_per_client * clients;
    r.reps = reps;
    // One query moves an i32 state in and an i32 action out.
    r.dmaBytes = r.queries * 8;

    for (int rep = 0; rep < reps; ++rep) {
        serving::ServingConfig config;
        config.maxBatch = shape.maxBatch;
        config.maxWaitSec = shape.maxWaitSec;
        serving::PolicyServer server(table, config);

        std::vector<std::uint64_t> digests(clients, 0);
        std::vector<std::thread> pool;
        pool.reserve(clients);
        common::Stopwatch wall;
        for (unsigned c = 0; c < clients; ++c) {
            pool.emplace_back([&, c] {
                // Client-local LCG: the query stream is pure in the
                // client index, so the XOR of per-client digests is
                // schedule-independent.
                std::uint32_t lcg = 0x9e3779b9u * (c + 1) + 1;
                std::uint64_t digest = 0;
                std::vector<std::int32_t> states(shape.chunk);
                std::vector<std::int32_t> actions(shape.chunk);
                const std::uint64_t requests =
                    queries_per_client / shape.chunk;
                for (std::uint64_t i = 0; i < requests; ++i) {
                    for (std::size_t k = 0; k < shape.chunk; ++k) {
                        lcg = lcg * 1664525u + 1013904223u;
                        states[k] = static_cast<std::int32_t>(
                            lcg % static_cast<std::uint32_t>(
                                      table.numStates()));
                    }
                    const bool served = server.actBatch(
                        states.data(), actions.data(), shape.chunk,
                        "bench");
                    SWIFTRL_ASSERT(served,
                                   "benchmark queries are in range");
                    for (std::size_t k = 0; k < shape.chunk; ++k)
                        digest ^= answerHash(states[k], actions[k]);
                }
                digests[c] = digest;
            });
        }
        for (auto &t : pool)
            t.join();
        const double sec = wall.seconds();
        server.stop();

        if (rep == 0 || sec < r.wallSec)
            r.wallSec = sec;
        if (rep == 0) {
            r.batches = server.stats().batches;
            std::uint64_t combined = 0;
            for (const std::uint64_t d : digests)
                combined ^= d;
            // Folded to 32 bits: the JSON number must survive a
            // double round-trip exactly for bench_compare.
            r.digest = (combined ^ (combined >> 32)) & 0xffffffffull;
        }
    }
    return r;
}

bool
writeJson(const std::string &path, const std::string &mode,
          const std::vector<QpsResult> &rows)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"bench\": \"perf_policy_qps\",\n"
        << "  \"mode\": \"" << mode << "\",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        const double qps =
            static_cast<double>(r.queries) / r.wallSec;
        const double mean_batch =
            r.batches > 0 ? static_cast<double>(r.queries) /
                                static_cast<double>(r.batches)
                          : 0.0;
        out << "    {\n"
            << "      \"name\": \"" << r.shape.name << "\",\n"
            << "      \"chunk\": " << r.shape.chunk << ",\n"
            << "      \"max_batch\": " << r.shape.maxBatch << ",\n"
            << "      \"max_wait_sec\": " << r.shape.maxWaitSec
            << ",\n"
            << "      \"clients\": " << r.clients << ",\n"
            << "      \"queries\": " << r.queries << ",\n"
            << "      \"reps\": " << r.reps << ",\n"
            << "      \"wall_sec\": " << r.wallSec << ",\n"
            << "      \"qps\": " << qps << ",\n"
            << "      \"batches\": " << r.batches << ",\n"
            << "      \"mean_batch\": " << mean_batch << ",\n"
            << "      \"sim_ops\": " << r.queries << ",\n"
            << "      \"dma_bytes\": " << r.dmaBytes << ",\n"
            << "      \"modelled_max_cycles\": " << r.digest << "\n"
            << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(
        argc, argv, {"smoke", "json", "clients", "queries", "reps"});

    const bool smoke = flags.getBool("smoke", false);
    // Enough concurrent clients that request-coalescing has
    // something to coalesce; the batched rows' win is the amortised
    // per-flush wakeup broadcast, which grows with fan-in.
    const unsigned clients = static_cast<unsigned>(
        flags.getInt("clients", 32));
    const std::uint64_t queries_per_client =
        static_cast<std::uint64_t>(
            flags.getInt("queries", smoke ? 1'000 : 10'000));
    const int reps =
        static_cast<int>(flags.getInt("reps", smoke ? 1 : 3));
    const std::string json_path =
        flags.getString("json", "BENCH_policy_qps.json");

    bench::banner(
        "Policy-serving throughput (host wall-clock)", !smoke,
        "clients=" + std::to_string(clients) + ", queries/client=" +
            std::to_string(queries_per_client) +
            ", reps=" + std::to_string(reps));

    const auto table = syntheticTable();
    std::vector<QpsResult> rows;
    for (const auto &shape : qpsCases())
        rows.push_back(measureCase(shape, table, clients,
                                   queries_per_client, reps));

    TextTable t("Greedy-action serving (best of reps)");
    t.setHeader({"workload", "wall s", "kQPS", "batches",
                 "mean batch"});
    for (const auto &r : rows) {
        const double mean_batch =
            r.batches > 0 ? static_cast<double>(r.queries) /
                                static_cast<double>(r.batches)
                          : 0.0;
        t.addRow({r.shape.name, TextTable::num(r.wallSec, 3),
                  TextTable::num(static_cast<double>(r.queries) /
                                     r.wallSec / 1e3,
                                 1),
                  std::to_string(r.batches),
                  TextTable::num(mean_batch, 1)});
    }
    t.print(std::cout);
    std::cout << "\nanswer digests are batching-invariant; "
                 "bench_compare verifies them\n";

    if (!writeJson(json_path, smoke ? "smoke" : "full", rows)) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    std::cout << "results written to " << json_path << "\n";
    return 0;
}
