/**
 * @file
 * Extension E3: does the INT32 scaling optimisation survive on
 * FP-capable PIM hardware? SwiftRL claims its strategies "can be
 * deployed on other real PIM hardware" (Sec. 2.2); HBM-PIM and AiM
 * have native floating-point MACs, which removes the emulation
 * penalty the optimisation exists to avoid. This harness runs the
 * same kernels under both cost profiles.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "pimsim/profiles.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv,
                                 {"transitions", "cores"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 100'000));
    const auto cores =
        static_cast<std::size_t>(flags.getInt("cores", 128));

    bench::banner(
        "Extension E3: the INT32 optimisation across PIM hardware "
        "profiles",
        false,
        "frozen lake, n=" + std::to_string(n) + ", cores=" +
            std::to_string(cores) + ", Q-learner-SEQ, 10 episodes");

    auto env = rlenv::makeEnvironment("frozenlake");
    const auto data = rlcore::collectRandomDataset(*env, n, 1);

    TextTable t("Kernel time by hardware profile and numeric format");
    t.setHeader({"profile", "FP32 s", "INT32 s", "INT32 speedup"});

    double upmem_speedup = 0.0, fp_speedup = 0.0;
    for (const auto &profile : pimsim::allProfiles()) {
        double kernel[2] = {0.0, 0.0};
        int slot = 0;
        for (const auto format :
             {NumericFormat::Fp32, NumericFormat::Int32}) {
            pimsim::PimConfig pim;
            pim.numDpus = cores;
            pim.costModel = profile.costModel;
            pimsim::PimSystem system(pim);

            PimTrainConfig cfg;
            cfg.workload =
                Workload{Algorithm::QLearning, Sampling::Seq, format};
            cfg.hyper.episodes = 10;
            cfg.tau = 10;
            PimTrainer trainer(system, cfg);
            kernel[slot++] =
                trainer.train(data, env->numStates(),
                              env->numActions())
                    .time.kernel;
        }
        const double speedup = kernel[0] / kernel[1];
        if (profile.name == "upmem-like")
            upmem_speedup = speedup;
        else
            fp_speedup = speedup;
        t.addRow({profile.name, TextTable::num(kernel[0], 3),
                  TextTable::num(kernel[1], 3),
                  TextTable::speedup(speedup, 2)});
    }
    t.print(std::cout);

    std::cout
        << "\nreading: on UPMEM-like hardware the INT32 optimisation "
           "is worth "
        << TextTable::speedup(upmem_speedup, 1)
        << "; with native FP MACs it shrinks to "
        << TextTable::speedup(fp_speedup, 2)
        << " — the optimisation is specifically a remedy for "
           "software-emulated floating point, exactly as the paper "
           "frames it (Key Takeaway 1).\n";
    return 0;
}
