/**
 * @file
 * Figure 6 reproduction: strong scaling of all 12 RL workloads on the
 * taxi environment across 125-2,000 PIM cores. The paper's headline
 * observations here: scaling mirrors frozen lake, but the
 * inter-PIM-core share is much larger (~47x more Q-value bytes per
 * synchronisation than frozen lake), peaking around 21% of total for
 * Q-learner-STR-INT32 at 2,000 cores.
 */

#include "bench/scaling_common.hh"

int
main(int argc, char **argv)
{
    const swiftrl::common::CliFlags flags(
        argc, argv,
        {"full", "transitions", "episodes", "tau", "trace",
         "host-threads"});

    swiftrl::bench::ScalingFigureConfig fig;
    fig.experimentName =
        "Figure 6: strong scaling, taxi (125-2000 PIM cores)";
    fig.envName = "taxi";
    fig.fullScale = flags.getBool("full", false);
    fig.transitions = static_cast<std::size_t>(flags.getInt(
        "transitions", fig.fullScale ? 5'000'000 : 200'000));
    fig.episodes =
        static_cast<int>(flags.getInt("episodes", 2000));
    fig.tau = static_cast<int>(flags.getInt("tau", 50));
    fig.hostThreads =
        static_cast<unsigned>(flags.getInt("host-threads", 0));
    fig.tracePath = flags.getString("trace", "");

    const int status = swiftrl::bench::runScalingFigure(fig);

    // The 47x claim: taxi synchronises 500x6 Q-entries vs 16x4.
    const double ratio = (500.0 * 6.0) / (16.0 * 4.0);
    std::cout << "Q-value sync payload taxi/frozen-lake: "
              << swiftrl::common::TextTable::speedup(ratio, 1)
              << " (paper: ~47x)\n";
    return status;
}
