/**
 * @file
 * Figure 2 reproduction: the roofline placement of the Q-learner and
 * SARSA-learner CPU workloads at 1M and 20M transitions on the
 * i7-9700K measurement host.
 *
 * Check against the paper: all four points sit in the memory-bound
 * region, left of the ridge point.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "roofline/roofline.hh"

int
main(int argc, char **argv)
{
    using swiftrl::common::CliFlags;
    using swiftrl::common::TextTable;

    const CliFlags flags(argc, argv, {"actions"});
    const auto actions =
        static_cast<swiftrl::rlcore::ActionId>(flags.getInt("actions", 4));

    swiftrl::bench::banner(
        "Figure 2: roofline model of RL training on i7-9700K", true,
        "frozen-lake action count = " + std::to_string(actions));

    const auto machine = swiftrl::baselines::i7_9700k();
    swiftrl::roofline::RooflineModel model{machine};

    std::cout << "machine roofs: peak "
              << TextTable::num(machine.peakGflops, 0)
              << " GFLOP/s, DRAM "
              << TextTable::num(machine.memBandwidthBytes / 1e9, 1)
              << " GB/s, ridge at "
              << TextTable::num(model.ridgeIntensity(), 2)
              << " flops/byte\n\n";

    TextTable t("Roofline placement (paper: all four points "
                "memory-bound)");
    t.setHeader({"workload", "OI (flops/B)", "attainable GF/s",
                 "achieved GF/s", "region"});
    bool all_memory_bound = true;
    for (const auto &p :
         swiftrl::roofline::fig2Points(machine, actions)) {
        t.addRow({p.label, TextTable::num(p.operationalIntensity, 3),
                  TextTable::num(p.attainableGflops, 2),
                  TextTable::num(p.achievedGflops, 2),
                  p.memoryBound ? "memory-bound" : "compute-bound"});
        all_memory_bound &= p.memoryBound;
    }
    t.print(std::cout);

    std::cout << "\npaper claim check: all points memory-bound -> "
              << (all_memory_bound ? "REPRODUCED" : "NOT reproduced")
              << "\n";
    return all_memory_bound ? 0 : 1;
}
