/**
 * @file
 * Extension E5: visit-count-weighted Q-table aggregation.
 *
 * The paper aggregates by plain averaging of local Q-tables. When a
 * core's chunk under-covers the state space, the zeros of its
 * unvisited entries dilute other cores' learned values; in
 * negative-reward environments the diluted average can even beat the
 * learned (negative) values and derail the greedy policy. Weighting
 * each entry by per-round visit counts (one extra gather per sync)
 * removes the dilution.
 *
 * This harness measures episodes-to-convergence on CliffWalking with
 * 100 cores (1,000-transition chunks): the regime where plain
 * averaging struggles.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "rlcore/evaluate.hh"
#include "rlenv/cliff_walking.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv,
                                 {"transitions", "cores"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 100'000));
    const auto cores =
        static_cast<std::size_t>(flags.getInt("cores", 100));

    bench::banner(
        "Extension E5: visit-weighted vs plain Q-table aggregation",
        false,
        "cliffwalking (negative rewards), n=" + std::to_string(n) +
            ", cores=" + std::to_string(cores) +
            " (under-covered chunks), Q-learner-SEQ-INT32, tau=10");

    swiftrl::rlenv::CliffWalking env;
    const auto data = rlcore::collectRandomDataset(env, n, 1);

    TextTable t("Mean reward vs training episodes (optimum: -13)");
    t.setHeader({"episodes", "plain average", "weighted average",
                 "weighted inter-core overhead"});
    for (const int episodes : {20, 40, 80, 160, 240}) {
        double mean[2] = {0.0, 0.0};
        double inter[2] = {0.0, 0.0};
        int slot = 0;
        for (const bool weighted : {false, true}) {
            auto system = bench::makePimSystem(cores);
            PimTrainConfig cfg;
            cfg.workload = Workload{Algorithm::QLearning,
                                    Sampling::Seq,
                                    NumericFormat::Int32};
            cfg.hyper.episodes = episodes;
            cfg.tau = 10;
            cfg.weightedAggregation = weighted;
            PimTrainer trainer(system, cfg);
            const auto r = trainer.train(data, env.numStates(),
                                         env.numActions());
            swiftrl::rlenv::CliffWalking eval_env;
            mean[slot] =
                rlcore::evaluateGreedy(eval_env, r.finalQ, 20, 7)
                    .meanReward;
            inter[slot] = r.time.interCore;
            ++slot;
        }
        t.addRow({TextTable::num(static_cast<long long>(episodes)),
                  TextTable::num(mean[0], 1),
                  TextTable::num(mean[1], 1),
                  TextTable::speedup(inter[1] / inter[0], 2)});
    }
    t.print(std::cout);

    std::cout
        << "\nreading: with 1,000-transition chunks the plain average "
           "needs ~200 episodes for value information to percolate "
           "across chunk boundaries; visit weighting converges ~5x "
           "sooner for ~1.4x the inter-core traffic (one extra "
           "count-table gather per round). With well-covered chunks "
           "(the paper's configurations) both aggregators behave "
           "identically.\n";
    return 0;
}
