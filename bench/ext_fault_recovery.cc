/**
 * @file
 * Extension E7: fault injection and recovery overhead.
 *
 * Real multi-rank UPMEM deployments see transient kernel faults,
 * corrupted transfers, and permanent core dropouts; the host absorbs
 * all three. This harness drives the simulator's seeded FaultPlan
 * through both trainers and checks the recovery contract end to end,
 * asserting every claim in the exit code:
 *
 *  1. An *inert* plan (seed set, all rates zero) is byte-identical in
 *     modelled time and Q-table to a build with no fault plan at all.
 *  2. Recovery overhead lands on the Recovery track: the reported
 *     `time.recovery` equals the timeline's Recovery-bucket total,
 *     the Recovery *phase* is non-empty whenever faults fired, and
 *     the overhead is excluded from the pipeline total.
 *  3. Transient/corruption faults are absorbed exactly: the retried
 *     run's Q-table is bit-identical to the fault-free run and its
 *     non-recovery pipeline total is unchanged.
 *  4. Permanent dropouts redistribute: the run completes with the
 *     surviving cores and stays bit-identical for every host-pool
 *     size — the determinism contract extends to the failure path.
 *  5. The same holds for the streaming trainer across actor counts.
 */

#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "rlcore/collection.hh"
#include "rlcore/qtable.hh"
#include "rlenv/registry.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using pimsim::FaultKind;
    using pimsim::Phase;
    using pimsim::PimConfig;
    using pimsim::PimSystem;
    using pimsim::TimeBucket;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::QTable;
    using rlcore::Sampling;

    const common::CliFlags flags(
        argc, argv, {"full", "cores", "transitions", "episodes"});
    const bool full = flags.getBool("full", false);
    const auto cores = static_cast<std::size_t>(
        flags.getInt("cores", full ? 500 : 64));
    const auto transitions = static_cast<std::size_t>(
        flags.getInt("transitions", full ? 100'000 : 8'192));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", full ? 100 : 20));

    bench::banner(
        "Extension E7: fault injection and recovery overhead", full,
        "frozenlake, Q-learner-SEQ-FP32, cores=" +
            std::to_string(cores) + ", " + std::to_string(transitions) +
            " transitions, " + std::to_string(episodes) +
            " episodes, fault seed 7");

    const std::string env_name = "frozenlake";
    auto probe = rlenv::makeEnvironment(env_name);
    const auto num_states = probe->numStates();
    const auto num_actions = probe->numActions();
    const auto data = bench::collectDataset(env_name, transitions, 11);

    PimTrainConfig train_cfg;
    train_cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                                  NumericFormat::Fp32};
    train_cfg.hyper.episodes = episodes;
    train_cfg.tau = std::min(5, episodes);
    train_cfg.tasklets = 2;
    // Rate rows keep a real per-command fault probability across the
    // whole sweep; give retry chains more headroom than the CLI
    // default of 3 so an unlucky seed cannot exhaust the harness.
    train_cfg.retry.limit = 10;

    const auto run = [&](const pimsim::FaultPlan &plan,
                         unsigned host_threads) {
        PimConfig pim;
        pim.numDpus = cores;
        pim.hostThreads = host_threads;
        pim.faultPlan = plan;
        PimSystem system(pim);
        return PimTrainer(system, train_cfg)
            .train(data, num_states, num_actions);
    };

    bool ok = true;
    const auto claim = [&ok](bool held, const std::string &what) {
        std::cout << "claim check: " << what << ": "
                  << (held ? "yes" : "NO — REGRESSION") << "\n";
        ok = ok && held;
    };

    // ---- 1. inert plan == no plan, byte for byte --------------------
    const auto clean = run({}, 0);
    pimsim::FaultPlan inert;
    inert.seed = 7; // a seed alone must not change anything
    const auto inert_run = run(inert, 0);
    bool inert_identical =
        QTable::maxAbsDifference(clean.finalQ, inert_run.finalQ) ==
            0.0f &&
        clean.timeline.size() == inert_run.timeline.size();
    if (inert_identical) {
        const auto &ea = clean.timeline.events();
        const auto &eb = inert_run.timeline.events();
        for (std::size_t i = 0; i < ea.size(); ++i)
            inert_identical = inert_identical &&
                              ea[i].start == eb[i].start &&
                              ea[i].end == eb[i].end &&
                              ea[i].label == eb[i].label;
    }

    // ---- 2+3. transient/corruption rate sweep -----------------------
    // The sweep targets a per-*command* fault probability p; the
    // per-(site, core) rate is p / cores, so the table reads the same
    // at any --cores.
    TextTable t("Transient + corruption faults, fixed seed "
                "(dropout disabled)");
    t.setHeader({"p(cmd)", "faults", "recovery (s)", "pipeline (s)",
                 "makespan (s)", "overhead"});
    bool sweep_identical = true;
    bool sweep_accounted = true;
    bool sweep_fired = false;
    for (const double p : {0.0, 0.05, 0.15, 0.4}) {
        pimsim::FaultPlan plan;
        plan.seed = 7;
        plan.transientRate = p / static_cast<double>(cores);
        plan.corruptRate = p / static_cast<double>(cores);
        if (p > 0.0) {
            // Anchor every faulted row with one scheduled transient
            // and one scheduled corruption so the recovery path is
            // exercised at any --cores/--episodes, independent of
            // the seed's rate draws. Site 0 is round 0's launch; its
            // retry takes site 1, so the round's gather is site 2.
            plan.scheduled = {
                {FaultKind::TransientKernel, /*site=*/0, /*dpu=*/0},
                {FaultKind::CorruptGather, /*site=*/2, /*dpu=*/1}};
        }
        const auto r = run(plan, 0);
        // Q must match bit for bit. The pipeline total is compared
        // with a 1e-9 relative tolerance: a retried command starts at
        // a recovery-shifted modelled time, and summing its (end -
        // start) duration at a different magnitude moves the bucket
        // totals by an ULP — schedule noise, not a cost change.
        sweep_identical =
            sweep_identical &&
            QTable::maxAbsDifference(clean.finalQ, r.finalQ) == 0.0f &&
            std::abs(r.time.total() - clean.time.total()) <=
                1e-9 * clean.time.total();
        // Recovery must be accounted once, on its own track: the
        // breakdown field mirrors the Recovery bucket exactly, fired
        // faults show up as busy time on the Recovery phase, and
        // total() excludes all of it. (The phase is busy even at
        // p=0 once a plan is active: checksum verification is paid
        // on every gather — detection is not free.)
        const double bucket =
            r.timeline.totalForBucket(TimeBucket::Recovery);
        sweep_accounted =
            sweep_accounted && r.time.recovery == bucket &&
            (r.faultsDetected == 0 ||
             r.timeline.totalForPhase(Phase::Recovery) > 0.0);
        sweep_fired = sweep_fired || r.faultsDetected > 0;
        t.addRow({TextTable::num(p, 2),
                  TextTable::num(
                      static_cast<long long>(r.faultsDetected)),
                  TextTable::num(r.time.recovery, 6),
                  TextTable::num(r.time.total(), 4),
                  TextTable::num(r.timeline.endTime(), 4),
                  TextTable::num(r.time.recovery / r.time.total(), 4)});
    }
    t.print(std::cout);

    // ---- 4. permanent dropout, across host-pool sizes ---------------
    pimsim::FaultPlan drop;
    drop.seed = 7;
    // Site 0 is round 0's launch; its retry occupies site 1 and the
    // round's gather site 2, so round 1's launch — the second
    // dropout's target — sits at site 3.
    drop.scheduled = {
        {FaultKind::PermanentDropout, /*site=*/0, /*dpu=*/1},
        {FaultKind::PermanentDropout, /*site=*/3,
         /*dpu=*/cores - 1}};
    TextTable t2("Permanent dropout recovery (2 scheduled dropouts), "
                 "host-pool sweep");
    t2.setHeader({"pool", "cores lost", "faults", "recovery (s)",
                  "max |dQ| vs pool=1"});
    const auto drop_serial = run(drop, 1);
    bool drop_ok = drop_serial.coresLost == 2 &&
                   drop_serial.time.recovery > 0.0 &&
                   drop_serial.time.recovery ==
                       drop_serial.timeline.totalForBucket(
                           TimeBucket::Recovery);
    for (const unsigned pool : {1u, 2u, 8u}) {
        const auto r = pool == 1 ? drop_serial : run(drop, pool);
        const float dq =
            QTable::maxAbsDifference(drop_serial.finalQ, r.finalQ);
        drop_ok = drop_ok && dq == 0.0f && r.coresLost == 2 &&
                  r.time.recovery == drop_serial.time.recovery;
        t2.addRow({TextTable::num(static_cast<long long>(pool)),
                   TextTable::num(
                       static_cast<long long>(r.coresLost)),
                   TextTable::num(
                       static_cast<long long>(r.faultsDetected)),
                   TextTable::num(r.time.recovery, 6),
                   TextTable::num(static_cast<double>(dq), 1)});
    }
    t2.print(std::cout);

    // ---- 5. streaming trainer, across actor counts ------------------
    StreamingConfig scfg;
    scfg.workload = train_cfg.workload;
    scfg.hyper.episodes = std::max(1, episodes / 4);
    scfg.tau = std::min(5, scfg.hyper.episodes);
    scfg.generations = 4;
    scfg.transitionsPerGeneration = transitions / 4;
    scfg.refreshPeriod = 2;
    scfg.retry = train_cfg.retry;
    pimsim::FaultPlan splan;
    splan.seed = 7;
    splan.transientRate = 0.1 / static_cast<double>(cores);
    splan.corruptRate = 0.1 / static_cast<double>(cores);
    // Site 0 is the first launch no matter what the rate draws do —
    // a dropout scheduled deeper in would shift with retries.
    splan.scheduled = {
        {FaultKind::PermanentDropout, /*site=*/0, /*dpu=*/3}};
    const auto srun = [&](unsigned actors, unsigned pool) {
        PimConfig pim;
        pim.numDpus = cores;
        pim.hostThreads = pool;
        pim.faultPlan = splan;
        PimSystem system(pim);
        StreamingConfig cfg = scfg;
        cfg.actors = actors;
        return StreamingTrainer(system, cfg).train(
            [&env_name] { return rlenv::makeEnvironment(env_name); },
            num_states, num_actions);
    };
    TextTable t3("Streaming trainer under the same plan, actor/pool "
                 "sweep");
    t3.setHeader({"actors", "pool", "faults", "cores lost",
                  "recovery (s)", "max |dQ| vs (1,1)"});
    const auto stream_base = srun(1, 1);
    bool stream_ok = stream_base.coresLost == 1 &&
                     stream_base.time.recovery ==
                         stream_base.timeline.totalForBucket(
                             TimeBucket::Recovery);
    const struct
    {
        unsigned actors, pool;
    } variants[] = {{1, 1}, {4, 1}, {1, 8}, {4, 8}};
    for (const auto &v : variants) {
        const auto r = (v.actors == 1 && v.pool == 1)
                           ? stream_base
                           : srun(v.actors, v.pool);
        const float dq =
            QTable::maxAbsDifference(stream_base.finalQ, r.finalQ);
        stream_ok = stream_ok && dq == 0.0f &&
                    r.faultsDetected == stream_base.faultsDetected &&
                    r.coresLost == stream_base.coresLost;
        t3.addRow({TextTable::num(static_cast<long long>(v.actors)),
                   TextTable::num(static_cast<long long>(v.pool)),
                   TextTable::num(
                       static_cast<long long>(r.faultsDetected)),
                   TextTable::num(
                       static_cast<long long>(r.coresLost)),
                   TextTable::num(r.time.recovery, 6),
                   TextTable::num(static_cast<double>(dq), 1)});
    }
    t3.print(std::cout);
    std::cout << "\n";

    claim(inert_identical, "inert fault plan is byte-identical in "
                           "time and Q to no plan");
    claim(sweep_accounted, "recovery overhead sits on the Recovery "
                           "bucket/phase and off the pipeline total");
    claim(sweep_fired, "the rate sweep actually exercised the fault "
                       "path (faults fired)");
    claim(sweep_identical, "transient+corruption runs reproduce the "
                           "fault-free Q exactly (pipeline total "
                           "within rounding)");
    claim(drop_ok, "dropout runs complete on the survivors, "
                   "bit-identical at every host-pool size");
    claim(stream_ok, "streaming recovery is bit-identical across "
                     "actor counts and pool sizes");

    std::cout
        << "\nreading: fault draws are pure in (seed, kind, site, "
           "core) and fault sites are positional on the command "
           "stream, so a fixed fault seed replays the same fault "
           "sequence — and the same recovery path — regardless of "
           "how the functional simulation is parallelised. Failed "
           "attempts, backoff, checksum verification, and "
           "redistribution transfers are all charged to the Recovery "
           "track, so the pipeline components stay comparable with "
           "the fault-free run and the overhead is visible on its "
           "own line.\n";
    return ok ? 0 : 1;
}
