/**
 * @file
 * Extension E2: tasklet (thread-level) scaling projection. SwiftRL
 * runs a single hardware thread per PIM core ("this work focuses
 * solely on PIM-core parallelism") and leaves tasklet parallelism as
 * future work. The UPMEM pipeline retires at most one instruction per
 * cycle and needs ~11 resident tasklets to get there; with t tasklets
 * the effective per-instruction interval is ~ceil(11/t).
 *
 * This harness measures the single-tasklet kernels and projects the
 * launch time at 2-16 tasklets with that first-order model (no WRAM
 * port contention, perfect intra-core chunk split) — an upper bound
 * on the paper's future-work headroom.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv,
                                 {"transitions", "cores"});
    const auto n = static_cast<std::size_t>(
        flags.getInt("transitions", 100'000));
    const auto cores =
        static_cast<std::size_t>(flags.getInt("cores", 500));

    bench::banner(
        "Extension E2: tasklet-scaling projection (the paper's "
        "future work)",
        false,
        "frozen lake, n=" + std::to_string(n) + ", cores=" +
            std::to_string(cores) +
            ", projection: interval(t) = ceil(11/t), ideal "
            "intra-core split");

    auto env = rlenv::makeEnvironment("frozenlake");
    const auto data = rlcore::collectRandomDataset(*env, n, 1);

    const pimsim::Cycles base_interval =
        pimsim::DpuCostModel{}.pipelineInterval;

    TextTable t("Measured multi-tasklet kernels vs the first-order "
                "projection");
    t.setHeader({"workload", "tasklets", "measured s",
                 "measured speedup", "projected speedup"});
    for (const auto format :
         {NumericFormat::Fp32, NumericFormat::Int32}) {
        double base = 0.0;
        for (const unsigned tasklets : {1u, 2u, 4u, 8u, 11u, 16u}) {
            auto system = bench::makePimSystem(cores);
            PimTrainConfig cfg;
            cfg.workload =
                Workload{Algorithm::QLearning, Sampling::Seq, format};
            cfg.hyper.episodes = 10;
            cfg.tau = 10;
            cfg.tasklets = tasklets;
            PimTrainer trainer(system, cfg);
            const auto r = trainer.train(data, env->numStates(),
                                         env->numActions());
            if (tasklets == 1)
                base = r.time.kernel;

            const double projected = static_cast<double>(
                std::min<pimsim::Cycles>(tasklets, base_interval));
            t.addRow({cfg.workload.name(),
                      TextTable::num(static_cast<long long>(
                          tasklets)),
                      TextTable::num(r.time.kernel, 4),
                      TextTable::speedup(base / r.time.kernel, 2),
                      TextTable::speedup(projected, 2)});
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nreading: ~11 tasklets saturate the 14-stage "
                 "pipeline for another ~11x on top of core-level "
                 "scaling; beyond that, extra tasklets buy nothing "
                 "(the issue bandwidth floors at 1 instruction/"
                 "cycle). The measured speedup trails the projection "
                 "slightly: sub-chunk imbalance and per-tasklet "
                 "stream switching are simulated, WRAM-port "
                 "contention is not.\n";
    return 0;
}
