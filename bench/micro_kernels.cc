/**
 * @file
 * Google-benchmark microbenchmarks: host-side throughput of the
 * update rules, the reference trainers, the environments, and the
 * simulator itself. These are wall-clock numbers for *this* host —
 * used to size the experiment harnesses, not to reproduce paper
 * figures.
 */

#include <benchmark/benchmark.h>

#include "rlcore/dataset.hh"
#include "rlcore/trainers.hh"
#include "rlcore/update_rules.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/taxi.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using namespace swiftrl;
using rlcore::Algorithm;
using rlcore::Dataset;
using rlcore::Hyper;
using rlcore::NumericFormat;
using rlcore::Sampling;

const Dataset &
lakeData()
{
    static const Dataset data = [] {
        rlenv::FrozenLake env(true);
        return rlcore::collectRandomDataset(env, 50'000, 1);
    }();
    return data;
}

void
BM_UpdateRuleFp32(benchmark::State &state)
{
    rlcore::HostOps ops;
    std::vector<float> q(64, 0.0f);
    int i = 0;
    for (auto _ : state) {
        rlcore::qlearningUpdateFp32(ops, q.data(), 4,
                                    (i * 7) % 16, i % 4, 0.5f,
                                    (i * 3) % 16, false, 0.1f, 0.95f);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateRuleFp32);

void
BM_UpdateRuleInt32(benchmark::State &state)
{
    rlcore::HostOps ops;
    std::vector<std::int32_t> q(64, 0);
    Hyper h;
    const auto scaled = rlcore::ScaledHyper::fromHyper(h);
    int i = 0;
    for (auto _ : state) {
        rlcore::qlearningUpdateInt32(ops, q.data(), 4, (i * 7) % 16,
                                     i % 4, 5000, (i * 3) % 16, false,
                                     scaled);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateRuleInt32);

void
BM_CpuReferenceEpoch(benchmark::State &state)
{
    const auto &data = lakeData();
    Hyper h;
    h.episodes = 1;
    const auto sampling = static_cast<Sampling>(state.range(0));
    for (auto _ : state) {
        auto q = rlcore::trainCpuReference(Algorithm::QLearning, data,
                                           16, 4, h, sampling,
                                           NumericFormat::Fp32);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CpuReferenceEpoch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2); // SEQ / RAN / STR

void
BM_PimSimulatedEpoch(benchmark::State &state)
{
    const auto &data = lakeData();
    const auto format = static_cast<NumericFormat>(state.range(0));
    for (auto _ : state) {
        pimsim::PimConfig pim_cfg;
        pim_cfg.numDpus = 16;
        pimsim::PimSystem system(pim_cfg);
        PimTrainConfig cfg;
        cfg.workload =
            Workload{Algorithm::QLearning, Sampling::Seq, format};
        cfg.hyper.episodes = 1;
        cfg.tau = 1;
        PimTrainer trainer(system, cfg);
        auto r = trainer.train(data, 16, 4);
        benchmark::DoNotOptimize(r.finalQ);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_PimSimulatedEpoch)->Arg(0)->Arg(1); // FP32 / INT32

void
BM_FrozenLakeStep(benchmark::State &state)
{
    rlenv::FrozenLake env(true);
    common::XorShift128 rng(1);
    env.reset(rng);
    for (auto _ : state) {
        const auto r = env.step(
            static_cast<rlenv::ActionId>(rng.nextBounded(4)), rng);
        if (r.done())
            env.reset(rng);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrozenLakeStep);

void
BM_TaxiStep(benchmark::State &state)
{
    rlenv::Taxi env;
    common::XorShift128 rng(1);
    env.reset(rng);
    for (auto _ : state) {
        const auto r = env.step(
            static_cast<rlenv::ActionId>(rng.nextBounded(6)), rng);
        if (r.done())
            env.reset(rng);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaxiStep);

void
BM_Lcg32Draw(benchmark::State &state)
{
    common::Lcg32 lcg(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(lcg.nextBounded(500));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lcg32Draw);

} // namespace

BENCHMARK_MAIN();
