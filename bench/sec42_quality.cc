/**
 * @file
 * Section 4.2 reproduction: RL training quality. Trains the PIM
 * implementation (simulated) and the CPU reference on frozen lake and
 * taxi, evaluates the greedy policies over 1,000 episodes, and prints
 * measured-vs-paper mean rewards.
 *
 * Paper reference points:
 *   frozen lake: Q-SEQ PIM tau=10/25/50 -> 0.74 / 0.7295 / 0.70
 *                (CPU reference ~0.70); SARSA-SEQ tau=50 -> 0.71 vs
 *                CPU 0.723.
 *   taxi: Q-SEQ tau=50 -> -7.9 vs CPU -8.6; SARSA -8.8 vs CPU -8.2.
 *   (The paper evaluates *partially trained* policies — Sec. 4.1
 *   collects data "until the policy performance achieves a
 *   performance threshold" — so its taxi numbers sit below the
 *   converged optimum of ~+8; we report converged quality and check
 *   the paper's actual claim: PIM quality matches CPU quality.)
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "rlcore/evaluate.hh"

namespace {

using namespace swiftrl;
using bench::makePimSystem;
using common::TextTable;
using rlcore::Algorithm;
using rlcore::evaluateGreedy;
using rlcore::Hyper;
using rlcore::NumericFormat;
using rlcore::Sampling;

struct QualityRow
{
    std::string workload;
    std::string platform;
    double mean;
    double paper;
};

double
pimQuality(const rlcore::Dataset &data, rlenv::Environment &eval_env,
           Algorithm algo, int tau, int episodes, std::size_t cores)
{
    auto system = makePimSystem(cores);
    PimTrainConfig cfg;
    cfg.workload = Workload{algo, Sampling::Seq, NumericFormat::Int32};
    cfg.hyper.episodes = episodes;
    cfg.tau = tau;
    PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, eval_env.numStates(),
                                      eval_env.numActions());
    return evaluateGreedy(eval_env, result.finalQ, 1000, 7).meanReward;
}

double
cpuQuality(const rlcore::Dataset &data, rlenv::Environment &eval_env,
           Algorithm algo, int episodes)
{
    Hyper h;
    h.episodes = episodes;
    const auto q = rlcore::trainCpuReference(
        algo, data, eval_env.numStates(), eval_env.numActions(), h,
        Sampling::Seq, NumericFormat::Fp32);
    return evaluateGreedy(eval_env, q, 1000, 7).meanReward;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(
        argc, argv,
        {"full", "lake-transitions", "taxi-transitions", "episodes",
         "cores"});
    const bool full = flags.getBool("full", false);
    const auto lake_n = static_cast<std::size_t>(flags.getInt(
        "lake-transitions", 1'000'000));
    const auto taxi_n = static_cast<std::size_t>(flags.getInt(
        "taxi-transitions", full ? 5'000'000 : 1'000'000));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", full ? 200 : 40));
    const auto cores =
        static_cast<std::size_t>(flags.getInt("cores", 8));

    bench::banner(
        "Section 4.2: RL training quality (PIM vs CPU)", full,
        "lake n=" + std::to_string(lake_n) +
            ", taxi n=" + std::to_string(taxi_n) +
            ", episodes=" + std::to_string(episodes) +
            ", PIM cores=" + std::to_string(cores) +
            ", eval episodes=1000, seed=42");

    std::vector<QualityRow> rows;

    // --- frozen lake ---------------------------------------------------
    {
        auto data = bench::collectDataset("frozenlake", lake_n, 1);
        auto eval_env = rlenv::makeEnvironment("frozenlake");
        for (const auto &[tau, paper] :
             {std::pair{10, 0.74}, {25, 0.7295}, {50, 0.70}}) {
            rows.push_back({"Q-learner-SEQ tau=" + std::to_string(tau),
                            "PIM",
                            pimQuality(data, *eval_env,
                                       Algorithm::QLearning, tau,
                                       episodes, cores),
                            paper});
        }
        rows.push_back({"Q-learner-SEQ", "CPU",
                        cpuQuality(data, *eval_env,
                                   Algorithm::QLearning, episodes),
                        0.70});
        rows.push_back({"SARSA-SEQ tau=50", "PIM",
                        pimQuality(data, *eval_env, Algorithm::Sarsa,
                                   50, episodes, cores),
                        0.71});
        rows.push_back({"SARSA-SEQ", "CPU",
                        cpuQuality(data, *eval_env, Algorithm::Sarsa,
                                   episodes),
                        0.723});
    }

    TextTable lake("Frozen lake mean reward (1,000 eval episodes)");
    lake.setHeader({"workload", "platform", "measured", "paper"});
    for (const auto &r : rows) {
        lake.addRow({r.workload, r.platform, TextTable::num(r.mean, 4),
                     TextTable::num(r.paper, 4)});
    }
    lake.print(std::cout);

    const double pim_lake = rows[2].mean; // tau=50
    const double cpu_lake = rows[3].mean;
    std::cout << "\npaper claim check (PIM quality on par with CPU): "
              << "|PIM - CPU| = "
              << TextTable::num(std::abs(pim_lake - cpu_lake), 4)
              << " -> "
              << (std::abs(pim_lake - cpu_lake) < 0.05 ? "REPRODUCED"
                                                       : "NOT "
                                                         "reproduced")
              << "\n\n";

    // --- taxi ----------------------------------------------------------
    rows.clear();
    {
        auto data = bench::collectDataset("taxi", taxi_n, 1);
        auto eval_env = rlenv::makeEnvironment("taxi");
        const int taxi_eps = std::max(10, episodes / 4);
        rows.push_back({"Q-learner-SEQ tau=50", "PIM",
                        pimQuality(data, *eval_env,
                                   Algorithm::QLearning, 50, taxi_eps,
                                   cores),
                        -7.9});
        rows.push_back({"Q-learner-SEQ", "CPU",
                        cpuQuality(data, *eval_env,
                                   Algorithm::QLearning, taxi_eps),
                        -8.6});
        rows.push_back({"SARSA-SEQ tau=50", "PIM",
                        pimQuality(data, *eval_env, Algorithm::Sarsa,
                                   50, taxi_eps, cores),
                        -8.8});
        rows.push_back({"SARSA-SEQ", "CPU",
                        cpuQuality(data, *eval_env, Algorithm::Sarsa,
                                   taxi_eps),
                        -8.2});
    }

    TextTable taxi("Taxi mean reward (1,000 eval episodes; paper "
                   "numbers are for partially-trained policies)");
    taxi.setHeader({"workload", "platform", "measured", "paper"});
    for (const auto &r : rows) {
        taxi.addRow({r.workload, r.platform, TextTable::num(r.mean, 2),
                     TextTable::num(r.paper, 2)});
    }
    taxi.print(std::cout);

    const double pim_taxi = rows[0].mean;
    const double cpu_taxi = rows[1].mean;
    std::cout << "\npaper claim check (PIM quality on par with CPU): "
              << "|PIM - CPU| = "
              << TextTable::num(std::abs(pim_taxi - cpu_taxi), 2)
              << " -> "
              << (std::abs(pim_taxi - cpu_taxi) < 1.0 ? "REPRODUCED"
                                                      : "NOT "
                                                        "reproduced")
              << "\n";
    return 0;
}
