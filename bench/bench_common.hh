/**
 * @file
 * Shared plumbing for the experiment harnesses in bench/: system
 * construction, dataset caching, and row formatting. Every bench
 * prints through common::TextTable so outputs diff cleanly against
 * EXPERIMENTS.md.
 *
 * Scale policy: by default each harness runs a *scaled-down* version
 * of the paper's configuration (smaller datasets, fewer episodes) so
 * the whole suite finishes in CI time; pass --full for the paper's
 * exact parameters. Ratios and shapes — who wins, by what factor,
 * where the crossovers sit — are what the reproduction checks, and
 * those are scale-stable (EXPERIMENTS.md records both).
 */

#ifndef SWIFTRL_BENCH_BENCH_COMMON_HH
#define SWIFTRL_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "swiftrl/swiftrl.hh"

namespace swiftrl::bench {

/**
 * Build a PIM system with n cores and the default UPMEM-like model.
 * @param host_threads workers for the functional simulation (0 = one
 *        per hardware thread); never affects modelled results.
 */
inline pimsim::PimSystem
makePimSystem(std::size_t num_dpus, unsigned host_threads = 0)
{
    pimsim::PimConfig cfg;
    cfg.numDpus = num_dpus;
    cfg.hostThreads = host_threads;
    return pimsim::PimSystem(cfg);
}

/** Collect (once) the offline dataset for an environment by name. */
inline rlcore::Dataset
collectDataset(const std::string &env_name, std::size_t transitions,
               std::uint64_t seed)
{
    auto env = rlenv::makeEnvironment(env_name);
    return rlcore::collectRandomDataset(*env, transitions, seed);
}

/** The paper's PIM core counts for the strong-scaling figures. */
inline const std::vector<std::size_t> kPaperCoreCounts = {
    125, 250, 500, 1000, 2000,
};

/** Banner printed by every harness (experiment id + scale note). */
inline void
banner(const std::string &experiment, bool full_scale,
       const std::string &params)
{
    std::cout << "### " << experiment << " ###\n"
              << "scale: "
              << (full_scale ? "FULL (paper parameters)"
                             : "scaled-down (pass --full for paper "
                               "parameters)")
              << "\n"
              << "parameters: " << params << "\n\n";
}

} // namespace swiftrl::bench

#endif // SWIFTRL_BENCH_BENCH_COMMON_HH
