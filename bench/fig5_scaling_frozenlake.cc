/**
 * @file
 * Figure 5 reproduction: strong scaling of all 12 RL workloads on the
 * frozen lake environment across 125-2,000 PIM cores, with the
 * execution time split into kernel / CPU->PIM / PIM->CPU /
 * inter-PIM-core components (tau = 50, stride = 4).
 */

#include "bench/scaling_common.hh"

int
main(int argc, char **argv)
{
    const swiftrl::common::CliFlags flags(
        argc, argv,
        {"full", "transitions", "episodes", "tau", "trace",
         "host-threads"});

    swiftrl::bench::ScalingFigureConfig fig;
    fig.experimentName =
        "Figure 5: strong scaling, frozen lake (125-2000 PIM cores)";
    fig.envName = "frozenlake";
    fig.fullScale = flags.getBool("full", false);
    fig.transitions = static_cast<std::size_t>(flags.getInt(
        "transitions", fig.fullScale ? 1'000'000 : 100'000));
    fig.episodes =
        static_cast<int>(flags.getInt("episodes", 2000));
    fig.tau = static_cast<int>(flags.getInt("tau", 50));
    fig.hostThreads =
        static_cast<unsigned>(flags.getInt("host-threads", 0));
    fig.tracePath = flags.getString("trace", "");
    return swiftrl::bench::runScalingFigure(fig);
}
