/**
 * @file
 * Extension E4: weak scaling. The paper runs strong scaling (fixed
 * dataset, more cores); the complementary experiment fixes the
 * *per-core* chunk (500 transitions, the paper's 2,000-core working
 * set) and grows the dataset with the machine. Ideal weak scaling
 * holds kernel time flat while total throughput grows linearly —
 * the claim behind "PIM is beneficial ... for a given working set
 * size" generalised to growing datasets.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace swiftrl;
    using common::TextTable;
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;

    const common::CliFlags flags(argc, argv,
                                 {"chunk", "episodes"});
    const auto chunk =
        static_cast<std::size_t>(flags.getInt("chunk", 500));
    const auto episodes =
        static_cast<int>(flags.getInt("episodes", 50));

    bench::banner(
        "Extension E4: weak scaling (fixed 500-transition chunk per "
        "core)",
        false,
        "frozen lake, Q-learner-SEQ-INT32, chunk=" +
            std::to_string(chunk) + ", episodes=" +
            std::to_string(episodes) + ", tau=" +
            std::to_string(episodes));

    TextTable t("Weak scaling: kernel time should stay flat");
    t.setHeader({"cores", "transitions", "kernel s", "total s",
                 "updates/s (modelled)"});

    double first_kernel = 0.0;
    bool flat = true;
    for (const auto cores : swiftrl::bench::kPaperCoreCounts) {
        const std::size_t n = cores * chunk;
        auto env = rlenv::makeEnvironment("frozenlake");
        const auto data = rlcore::collectRandomDataset(*env, n, 1);

        auto system = bench::makePimSystem(cores);
        PimTrainConfig cfg;
        cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                                NumericFormat::Int32};
        cfg.hyper.episodes = episodes;
        cfg.tau = episodes;
        PimTrainer trainer(system, cfg);
        const auto r = trainer.train(data, env->numStates(),
                                     env->numActions());

        if (first_kernel == 0.0)
            first_kernel = r.time.kernel;
        flat &= r.time.kernel < 1.10 * first_kernel;

        const double updates = static_cast<double>(n) *
                               static_cast<double>(episodes);
        t.addRow({TextTable::num(static_cast<long long>(cores)),
                  TextTable::num(static_cast<long long>(n)),
                  TextTable::num(r.time.kernel, 4),
                  TextTable::num(r.time.total(), 4),
                  TextTable::num(updates / r.time.kernel / 1e6, 1) +
                      "M"});
    }
    t.print(std::cout);

    std::cout << "\nweak-scaling check (kernel time flat within "
                 "10%): "
              << (flat ? "HOLDS" : "DOES NOT HOLD") << "\n";
    return flat ? 0 : 1;
}
