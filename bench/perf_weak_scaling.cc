/**
 * @file
 * Weak-scaling benchmark for sharded Q-tables: grow the state space
 * and the shard count together (procedural "lake:<side>" instances,
 * roughly constant states *per shard*) and record the modelled time
 * per Q-update. The point of sharding is that this curve stays near
 * flat: with whole-table replication the per-round sync cost grows
 * with the full table, with shards each core only ever moves its
 * slice, so scaling the machine with the problem holds the per-update
 * cost steady.
 *
 * Before writing a single row the bench asserts the layer's two
 * correctness claims: a 1-shard run is bit-identical to the unsharded
 * trainer on the same dataset, and every configuration is
 * deterministic (two runs, identical Q bits). The modelled slots
 * tools/bench_compare.py verifies carry: sim_ops = communication
 * rounds, dma_bytes = per-round slice traffic (slice bytes x cores),
 * modelled_max_cycles = an FNV digest of the final Q-table bits — a
 * change that moves a learned value fails CI even at equal speed.
 *
 * Results go to JSON (default BENCH_weak_scaling.json); CI runs
 * --smoke and diffs against the recorded run (see
 * .github/workflows/ci.yml).
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "common/stopwatch.hh"
#include "rlcore/collection.hh"
#include "rlenv/registry.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using namespace swiftrl;
using common::TextTable;
using rlcore::Dataset;
using rlcore::QTable;

/** One weak-scaling point: a lake size plus its machine. */
struct Point
{
    rlcore::StateId side = 0;
    std::size_t shards = 0;
    std::size_t cores = 0;
    std::size_t transitions = 0;
};

/** One measured row. */
struct Row
{
    std::string name;
    rlcore::StateId states = 0;
    std::size_t shards = 0;
    std::size_t cores = 0;
    double wallSec = 0.0;
    double modelledSec = 0.0;
    double nsPerUpdate = 0.0;
    std::uint64_t simOps = 0;   ///< communication rounds
    std::uint64_t dmaBytes = 0; ///< per-round slice traffic
    std::uint64_t digest = 0;   ///< FNV digest of the final Q bits
};

/**
 * The weak-scaling ladder: states per shard stays near 256 (smoke) /
 * 1024 (full) while shards, cores, and the dataset scale together.
 */
std::vector<Point>
ladder(bool smoke)
{
    if (smoke)
        return {
            {16, 1, 2, 4'096},
            {23, 2, 4, 8'192},
            {32, 4, 8, 16'384},
            {45, 8, 16, 32'768},
        };
    return {
        {32, 1, 4, 16'384},
        {45, 2, 8, 32'768},
        {64, 4, 16, 65'536},
        {91, 8, 32, 131'072},
        {128, 16, 64, 262'144},
    };
}

PimTrainConfig
trainConfig(std::size_t shards, int episodes)
{
    PimTrainConfig cfg;
    cfg.workload = Workload{rlcore::Algorithm::QLearning,
                            rlcore::Sampling::Seq,
                            rlcore::NumericFormat::Fp32};
    cfg.hyper.episodes = episodes;
    cfg.tau = episodes / 4; // 4 sync rounds at any scale
    cfg.shards = shards;
    return cfg;
}

PimTrainResult
runPoint(const Dataset &data, rlcore::StateId ns, rlcore::ActionId na,
         std::size_t cores, std::size_t shards, int episodes)
{
    pimsim::PimConfig machine;
    machine.numDpus = cores;
    pimsim::PimSystem system(machine);
    PimTrainer trainer(system, trainConfig(shards, episodes));
    return trainer.train(data, ns, na);
}

/** FNV-1a over the final Q-table's bit pattern. */
std::uint64_t
digestTable(const QTable &q)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const float v : q.values()) {
        std::uint32_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        for (int i = 0; i < 4; ++i) {
            hash ^= (bits >> (8 * i)) & 0xffu;
            hash *= 0x100000001b3ull;
        }
    }
    return (hash ^ (hash >> 32)) & 0xffffffffull;
}

bool
bitIdentical(const QTable &a, const QTable &b)
{
    return a.entryCount() == b.entryCount() &&
           std::memcmp(a.values().data(), b.values().data(),
                       a.entryCount() * sizeof(float)) == 0;
}

bool
measure(const Point &p, int episodes, Row &row)
{
    row.name = "lake" + std::to_string(p.side) + "/s" +
               std::to_string(p.shards);
    row.states = p.side * p.side;
    row.shards = p.shards;
    row.cores = p.cores;

    auto env = rlenv::makeEnvironment(
        "lake:" + std::to_string(p.side));
    const Dataset data =
        rlcore::collectRandomDataset(*env, p.transitions, 29);

    common::Stopwatch wall;
    const auto result = runPoint(data, env->numStates(),
                                 env->numActions(), p.cores,
                                 p.shards, episodes);
    row.wallSec = wall.seconds();
    row.modelledSec = result.time.total();

    // Every core sweeps its chunk once per episode, so the run
    // performs (episodes x transitions) Q-updates in aggregate.
    const double updates =
        double(episodes) * double(p.transitions);
    row.nsPerUpdate = row.modelledSec / updates * 1e9;
    row.simOps = std::uint64_t(result.commRounds);
    const std::size_t slice_rows =
        (std::size_t(row.states) + p.shards - 1) / p.shards;
    row.dmaBytes = std::uint64_t(slice_rows) *
                   std::uint64_t(env->numActions()) * 4 * p.cores;
    row.digest = digestTable(result.finalQ);

    // Determinism: the same point must reproduce bit-identically.
    const auto again = runPoint(data, env->numStates(),
                                env->numActions(), p.cores, p.shards,
                                episodes);
    if (!bitIdentical(result.finalQ, again.finalQ)) {
        std::cerr << row.name << ": two identical runs diverged\n";
        return false;
    }

    // 1-shard equivalence: sharding must be a pure layout change.
    if (p.shards == 1) {
        auto cfg = trainConfig(0, episodes);
        pimsim::PimConfig machine;
        machine.numDpus = p.cores;
        pimsim::PimSystem system(machine);
        const auto plain =
            PimTrainer(system, cfg).train(data, env->numStates(),
                                          env->numActions());
        if (!bitIdentical(result.finalQ, plain.finalQ)) {
            std::cerr << row.name
                      << ": 1-shard run diverged from the unsharded "
                         "trainer\n";
            return false;
        }
    }
    return true;
}

bool
writeJson(const std::string &path, const std::string &mode,
          const std::vector<Row> &rows)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"bench\": \"perf_weak_scaling\",\n"
        << "  \"mode\": \"" << mode << "\",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        out << "    {\n"
            << "      \"name\": \"" << r.name << "\",\n"
            << "      \"states\": " << r.states << ",\n"
            << "      \"shards\": " << r.shards << ",\n"
            << "      \"cores\": " << r.cores << ",\n"
            << "      \"wall_sec\": " << r.wallSec << ",\n"
            << "      \"modelled_sec\": " << r.modelledSec << ",\n"
            << "      \"ns_per_update\": " << r.nsPerUpdate << ",\n"
            << "      \"sim_ops\": " << r.simOps << ",\n"
            << "      \"dma_bytes\": " << r.dmaBytes << ",\n"
            << "      \"modelled_max_cycles\": " << r.digest << "\n"
            << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliFlags flags(argc, argv, {"smoke", "json"});

    const bool smoke = flags.getBool("smoke", false);
    const std::string json_path =
        flags.getString("json", "BENCH_weak_scaling.json");
    const int episodes = smoke ? 40 : 80;

    bench::banner("Sharded Q-table weak scaling (modelled ns/update)",
                  !smoke,
                  "procedural lakes, states/shard held steady");

    std::vector<Row> rows;
    for (const auto &p : ladder(smoke)) {
        Row row;
        if (!measure(p, episodes, row))
            return 1;
        rows.push_back(row);
    }

    // The weak-scaling claim itself: time per update must stay near
    // flat from the smallest machine to the largest. Whole-table
    // replication fails this bound well before 8 shards.
    const double first = rows.front().nsPerUpdate;
    const double last = rows.back().nsPerUpdate;
    if (last > first * 2.0) {
        std::cerr << "weak scaling broke: " << first
                  << " ns/update at " << rows.front().name << " vs "
                  << last << " at " << rows.back().name << "\n";
        return 1;
    }

    TextTable t("Sharded weak scaling (modelled time)");
    t.setHeader({"point", "states", "shards", "cores", "modelled s",
                 "ns/update", "wall s"});
    for (const auto &r : rows) {
        t.addRow({r.name, std::to_string(r.states),
                  std::to_string(r.shards), std::to_string(r.cores),
                  TextTable::num(r.modelledSec, 4),
                  TextTable::num(r.nsPerUpdate, 2),
                  TextTable::num(r.wallSec, 3)});
    }
    t.print(std::cout);
    std::cout << "\nflat-curve bound held (" << TextTable::num(last, 2)
              << " <= 2x " << TextTable::num(first, 2)
              << " ns/update); bench_compare verifies the digests\n";

    if (!writeJson(json_path, smoke ? "smoke" : "full", rows)) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    std::cout << "results written to " << json_path << "\n";
    return 0;
}
